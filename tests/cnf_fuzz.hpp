/// \file
/// Seeded random-CNF generator behind the differential fuzz harness
/// (fuzz_test.cpp): four instance families that stress different solver
/// paths — 3-SAT near the sat/unsat threshold (deep search), mixed clause
/// widths (watch-list shapes), unit-heavy streams (level-0 simplification
/// and BVE fodder), and pigeonhole-plus-noise (guaranteed-unsat cores with
/// removable slack). Everything is a pure function of the seed, so a
/// failing round reproduces from its seed alone.
#pragma once

#include <cstdint>
#include <vector>

#include "sat/pigeonhole.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace sciduction::test {

/// One generated instance: the clause list is kept so models can be
/// evaluated against the ORIGINAL formula (not the solver's simplified
/// clause database — the whole point of the differential harness).
struct fuzz_cnf {
    int num_vars = 0;
    std::vector<sat::clause_lits> clauses;

    /// Replays the instance into a solver (identical order every call —
    /// the replica contract the strategy layer needs).
    void load_into(sat::solver& s) const {
        for (int i = 0; i < num_vars; ++i) s.new_var();
        for (const sat::clause_lits& c : clauses) s.add_clause(c);
    }

    /// True when the solver's current model satisfies every original
    /// clause — evaluated on this struct's clauses, so eliminated
    /// variables must have been reconstructed for it to pass.
    [[nodiscard]] bool satisfied_by(const sat::solver& s) const {
        for (const sat::clause_lits& c : clauses) {
            bool sat = false;
            for (sat::lit l : c) sat = sat || s.model_lit(l);
            if (!sat) return false;
        }
        return true;
    }
};

namespace detail {

/// One random clause of exactly `width` distinct variables.
inline sat::clause_lits random_clause(util::rng& r, int num_vars, int width) {
    sat::clause_lits c;
    while (static_cast<int>(c.size()) < width) {
        auto v = static_cast<sat::var>(r.next_below(static_cast<std::uint64_t>(num_vars)));
        bool dup = false;
        for (sat::lit l : c) dup = dup || sat::var_of(l) == v;
        if (!dup) c.push_back(sat::mk_lit(v, r.next_below(2) == 1));
    }
    return c;
}

}  // namespace detail

/// Generates the seed'th instance. The low bits of the seed pick the
/// family, the rest parameterize it; all sizes are kept small enough that
/// a full differential round (9 feature x strategy combinations) stays
/// well under a second.
inline fuzz_cnf generate_cnf(std::uint64_t seed) {
    util::rng r;
    r.reseed(seed * 0x9e3779b97f4a7c15ULL + 1);
    fuzz_cnf out;
    switch (seed % 4) {
        case 0: {  // 3-SAT near the threshold ratio (~4.26): deep search
            out.num_vars = 30 + static_cast<int>(r.next_below(31));
            const int clauses = static_cast<int>(4.26 * out.num_vars);
            for (int i = 0; i < clauses; ++i)
                out.clauses.push_back(detail::random_clause(r, out.num_vars, 3));
            break;
        }
        case 1: {  // mixed widths 2..6: exercises watch/blocker shapes
            out.num_vars = 25 + static_cast<int>(r.next_below(26));
            const int clauses = 3 * out.num_vars;
            for (int i = 0; i < clauses; ++i) {
                const int width = 2 + static_cast<int>(r.next_below(5));
                out.clauses.push_back(detail::random_clause(r, out.num_vars, width));
            }
            break;
        }
        case 2: {  // unit-heavy: level-0 simplification + elimination fodder
            out.num_vars = 30 + static_cast<int>(r.next_below(21));
            const int clauses = 3 * out.num_vars;
            for (int i = 0; i < clauses; ++i) {
                const std::uint64_t roll = r.next_below(10);
                const int width = roll < 2 ? 1 : (roll < 5 ? 2 : 3);
                out.clauses.push_back(detail::random_clause(r, out.num_vars, width));
            }
            break;
        }
        default: {  // pigeonhole-like: a PHP core plus random slack clauses
            const int holes = 4 + static_cast<int>(r.next_below(2));  // 4 or 5
            out.num_vars = (holes + 1) * holes;
            for (int p = 0; p <= holes; ++p) {
                sat::clause_lits c;
                for (int h = 0; h < holes; ++h)
                    c.push_back(sat::mk_lit(static_cast<sat::var>(p * holes + h)));
                out.clauses.push_back(c);
            }
            for (int h = 0; h < holes; ++h)
                for (int p = 0; p <= holes; ++p)
                    for (int q = p + 1; q <= holes; ++q)
                        out.clauses.push_back({~sat::mk_lit(static_cast<sat::var>(p * holes + h)),
                                               ~sat::mk_lit(static_cast<sat::var>(q * holes + h))});
            const int noise = static_cast<int>(r.next_below(20));
            for (int i = 0; i < noise; ++i)
                out.clauses.push_back(detail::random_clause(r, out.num_vars, 3));
            break;
        }
    }
    return out;
}

}  // namespace sciduction::test
