#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "gametime/gametime.hpp"
#include "invgen/invgen.hpp"
#include "ir/parser.hpp"
#include "ir/transform.hpp"
#include "ogis/benchmarks.hpp"
#include "sat/pigeonhole.hpp"
#include "engine_test_util.hpp"
#include "substrate/engine.hpp"
#include "substrate/shard.hpp"

namespace sciduction::substrate {
namespace {

using sat::encode_pigeonhole;

// ---- cube generation --------------------------------------------------------

TEST(cube_generation, balanced_tree_with_sibling_structure) {
    sat::solver s;
    encode_pigeonhole(s, 6);
    cube_plan plan = generate_cubes(s, {.depth = 3, .probe_candidates = 8});
    EXPECT_FALSE(plan.root_unsat);
    ASSERT_EQ(plan.split_vars.size(), 3u);
    ASSERT_EQ(plan.cubes.size(), 8u);
    // Distinct split variables.
    EXPECT_NE(plan.split_vars[0], plan.split_vars[1]);
    EXPECT_NE(plan.split_vars[1], plan.split_vars[2]);
    EXPECT_NE(plan.split_vars[0], plan.split_vars[2]);
    for (std::size_t k = 0; k < plan.cubes.size(); ++k) {
        ASSERT_EQ(plan.cubes[k].lits.size(), 3u);
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_EQ(sat::var_of(plan.cubes[k].lits[j]), plan.split_vars[j]);
    }
    // Siblings 2m / 2m+1 differ exactly in the sign of the last literal.
    for (std::size_t m = 0; m < plan.cubes.size() / 2; ++m) {
        const auto& even = plan.cubes[2 * m].lits;
        const auto& odd = plan.cubes[2 * m + 1].lits;
        EXPECT_EQ(even[0], odd[0]);
        EXPECT_EQ(even[1], odd[1]);
        EXPECT_EQ(even[2], ~odd[2]);
    }
}

TEST(cube_generation, deterministic_across_identical_solvers) {
    auto make_plan = [] {
        sat::solver s;
        encode_pigeonhole(s, 5);
        return generate_cubes(s, {.depth = 2, .probe_candidates = 6});
    };
    cube_plan a = make_plan();
    cube_plan b = make_plan();
    EXPECT_EQ(a.split_vars, b.split_vars);
    EXPECT_EQ(a.forced, b.forced);
    ASSERT_EQ(a.cubes.size(), b.cubes.size());
    for (std::size_t i = 0; i < a.cubes.size(); ++i) EXPECT_EQ(a.cubes[i].lits, b.cubes[i].lits);
}

TEST(cube_generation, failed_literal_becomes_forced_unit) {
    sat::solver s;
    sat::var a = s.new_var();
    sat::var b = s.new_var();
    s.add_clause(~sat::mk_lit(a), sat::mk_lit(b));
    s.add_clause(~sat::mk_lit(a), ~sat::mk_lit(b));
    cube_plan plan = generate_cubes(s, {.depth = 1, .probe_candidates = 4});
    EXPECT_FALSE(plan.root_unsat);
    // Probing a conflicts, so ~a is entailed and recorded.
    ASSERT_FALSE(plan.forced.empty());
    EXPECT_EQ(plan.forced[0], ~sat::mk_lit(a));
}

TEST(cube_generation, refuted_root_detected) {
    sat::solver s;
    sat::var a = s.new_var();
    s.add_clause(sat::mk_lit(a));
    s.add_clause(~sat::mk_lit(a));
    cube_plan plan = generate_cubes(s, {});
    EXPECT_TRUE(plan.root_unsat);
    auto outcome = solve_cubes([] { return std::make_unique<sat_backend>(); }, plan, 1);
    EXPECT_TRUE(outcome.result.is_unsat());
}

// ---- shard scheduler --------------------------------------------------------

shard_outcome shard_pigeonhole(int holes, unsigned depth, unsigned threads) {
    sat::solver prototype;
    encode_pigeonhole(prototype, holes);
    cube_plan plan = generate_cubes(prototype, {.depth = depth, .probe_candidates = 8});
    return solve_cubes(
        [&] {
            auto backend = std::make_unique<sat_backend>();
            encode_pigeonhole(backend->solver(), holes);
            return backend;
        },
        plan, threads);
}

TEST(shard, all_unsat_answers_and_stats_deterministic_across_thread_counts) {
    // The satellite determinism contract: identical answers AND identical
    // stats under threads = 1 vs threads = N for all-UNSAT cube trees.
    shard_outcome one = shard_pigeonhole(6, 3, 1);
    shard_outcome four = shard_pigeonhole(6, 3, 4);
    EXPECT_TRUE(one.result.is_unsat());
    EXPECT_TRUE(four.result.is_unsat());
    EXPECT_EQ(one.winning_cube, shard_outcome::no_cube);
    EXPECT_EQ(four.winning_cube, shard_outcome::no_cube);
    EXPECT_EQ(one.stats, four.stats);
    EXPECT_EQ(one.cube_fates, four.cube_fates);
    // Every cube is accounted for, none skipped.
    EXPECT_EQ(one.stats.refuted + one.stats.pruned, one.stats.cubes);
    EXPECT_EQ(one.stats.skipped, 0u);
}

TEST(shard, sat_race_returns_model_satisfying_all_clauses) {
    // v0 forced true, implication chain v0 -> ... -> v19: every model sets
    // every variable true, whichever cube wins the race.
    auto build = [](sat::solver& s) {
        std::vector<sat::var> v;
        for (int i = 0; i < 20; ++i) v.push_back(s.new_var());
        s.add_clause(sat::mk_lit(v[0]));
        for (int i = 0; i + 1 < 20; ++i)
            s.add_clause(~sat::mk_lit(v[static_cast<std::size_t>(i)]),
                         sat::mk_lit(v[static_cast<std::size_t>(i) + 1]));
    };
    for (unsigned threads : {1u, 4u}) {
        sat::solver prototype;
        build(prototype);
        cube_plan plan = generate_cubes(prototype, {.depth = 2, .probe_candidates = 4});
        auto outcome = solve_cubes(
            [&] {
                auto backend = std::make_unique<sat_backend>();
                build(backend->solver());
                return backend;
            },
            plan, threads);
        ASSERT_TRUE(outcome.result.is_sat()) << "threads " << threads;
        ASSERT_NE(outcome.winning_cube, shard_outcome::no_cube);
        for (int i = 0; i < 20; ++i)
            EXPECT_EQ(outcome.result.sat_model[static_cast<std::size_t>(i)], sat::lbool::l_true);
    }
}

TEST(shard, total_conflicts_beat_single_instance_on_pigeonhole) {
    // The scaling claim behind cube-and-conquer: splitting the hard query
    // yields subproblems whose *total* refutation work undercuts the single
    // instance — the win portfolio racing cannot provide. Measured in
    // conflicts so the assertion is scheduling- and core-count-independent
    // (all-UNSAT shard work is deterministic). Shallow splits win this
    // metric: each extra level multiplies the per-pair re-learning cost, so
    // depth 1-2 minimizes total work while already exposing 2-4x
    // parallelism (see bench_substrate_solvers for the sweep).
    sat::solver baseline;
    encode_pigeonhole(baseline, 7);
    ASSERT_EQ(baseline.solve(), sat::solve_result::unsat);
    const std::uint64_t baseline_conflicts = baseline.stats().conflicts;

    shard_outcome sharded = shard_pigeonhole(7, 2, 1);
    EXPECT_TRUE(sharded.result.is_unsat());
    EXPECT_LT(sharded.stats.conflicts, baseline_conflicts)
        << "cube-sharded total conflicts should undercut the single instance";
}

// ---- engine integration -----------------------------------------------------

TEST(engine_shard, unsat_matches_plain_check_and_composes_with_cache) {
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 16);
    smt::term y = tm.mk_bv_var("y", 16);
    smt::term commut = tm.mk_distinct(tm.mk_bvadd(x, y),
                                      tm.mk_bvsub(tm.mk_bvadd(tm.mk_bvadd(y, x), y), y));

    smt_engine engine(tm, {.threads = 2, .shard_depth = 2});
    shard_stats stats;
    EXPECT_EQ(solve_sharded(engine, {commut}, &stats).ans, answer::unsat);
    EXPECT_GT(stats.cubes, 0u);
    // The sharded result landed in the cache: the re-check (plain or
    // sharded) is a hit, no new solver runs.
    const auto runs = engine.stats().solver_runs;
    EXPECT_EQ(solve_portfolio(engine, {commut}).ans, answer::unsat);
    EXPECT_EQ(solve_sharded(engine, {commut}).ans, answer::unsat);
    EXPECT_EQ(engine.stats().solver_runs, runs);
    EXPECT_EQ(engine.stats().cache_hits, 2u);
}

TEST(engine_shard, sat_model_valid_under_any_thread_count) {
    for (unsigned threads : {1u, 4u}) {
        smt::term_manager tm;
        smt::term x = tm.mk_bv_var("x", 16);
        smt::term feasible = tm.mk_and(tm.mk_ult(tm.mk_bv_const(16, 10), x),
                                       tm.mk_ult(x, tm.mk_bv_const(16, 100)));
        smt_engine engine(tm, {.use_cache = false, .threads = threads, .shard_depth = 3});
        auto result = solve_sharded(engine, {feasible});
        ASSERT_TRUE(result.is_sat()) << "threads " << threads;
        EXPECT_EQ(eval_model(tm, feasible, result.model), 1u);
    }
}

TEST(engine_shard, depth_zero_degrades_to_plain_check) {
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 8);
    smt::term q = tm.mk_ult(x, tm.mk_bv_const(8, 5));
    smt_engine engine(tm);  // shard_depth == 0
    EXPECT_TRUE(solve_portfolio(engine, {q}).is_sat());
    // check_sharded is a cache hit on the plain check's entry.
    shard_stats stats;
    EXPECT_TRUE(solve_sharded(engine, {q}, &stats).is_sat());
    EXPECT_EQ(engine.stats().cache_hits, 1u);
    EXPECT_EQ(stats.cubes, 0u);
}

// ---- async futures ----------------------------------------------------------

TEST(engine_async, future_resolves_and_result_lands_in_cache) {
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 16);
    smt::term y = tm.mk_bv_var("y", 16);
    smt::term commut = tm.mk_distinct(tm.mk_bvadd(x, y),
                                      tm.mk_bvsub(tm.mk_bvadd(tm.mk_bvadd(y, x), y), y));
    smt_engine engine(tm, {.threads = 2});
    auto future = submit_portfolio(engine, {commut});
    EXPECT_EQ(future.get().ans, answer::unsat);
    EXPECT_EQ(solve_portfolio(engine, {commut}).ans, answer::unsat);
    EXPECT_EQ(engine.stats().cache_hits, 1u);
    EXPECT_EQ(engine.stats().solver_runs, 1u);
}

TEST(engine_async, inflight_duplicates_coalesce_instead_of_resolving) {
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 6);
    smt::term y = tm.mk_bv_var("y", 6);
    // Mildly hard (multiplier-backed UNSAT at a small width) so the first
    // query is usually still in flight when the duplicates arrive; either
    // way the accounting below must hold.
    smt::term hard = tm.mk_distinct(
        tm.mk_bvmul(x, tm.mk_bvadd(y, y)),
        tm.mk_bvadd(tm.mk_bvmul(x, y), tm.mk_bvmul(x, y)));
    smt_engine engine(tm, {.threads = 2});
    auto f1 = submit_portfolio(engine, {hard});
    auto f2 = submit_portfolio(engine, {hard});
    auto f3 = submit_portfolio(engine, {hard});
    EXPECT_EQ(f1.get().ans, answer::unsat);
    EXPECT_EQ(f2.get().ans, answer::unsat);
    EXPECT_EQ(f3.get().ans, answer::unsat);
    // Exactly one solve; the duplicates either coalesced onto the in-flight
    // future or hit the cache after it completed — never re-solved.
    auto stats = engine.stats();
    EXPECT_EQ(stats.solver_runs, 1u);
    EXPECT_EQ(stats.coalesced + stats.cache_hits, 2u);
    EXPECT_EQ(stats.queries, 3u);
}

TEST(engine_async, cache_hit_resolves_immediately) {
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 8);
    smt::term q = tm.mk_ult(x, tm.mk_bv_const(8, 9));
    smt_engine engine(tm);
    EXPECT_TRUE(solve_portfolio(engine, {q}).is_sat());
    auto future = submit_portfolio(engine, {q});
    EXPECT_TRUE(future.get().is_sat());
    EXPECT_EQ(engine.stats().cache_hits, 1u);
    EXPECT_EQ(engine.stats().solver_runs, 1u);
}

// ---- cache capacity / LRU ---------------------------------------------------

TEST(query_cache_lru, capacity_bounds_size_and_evicts_least_recently_used) {
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 8);
    auto q = [&](std::uint64_t bound) {
        return std::vector<smt::term>{tm.mk_ult(x, tm.mk_bv_const(8, bound))};
    };
    smt_engine engine(tm, {.cache_capacity = 2});
    EXPECT_TRUE(solve_portfolio(engine, q(10)).is_sat());
    EXPECT_TRUE(solve_portfolio(engine, q(20)).is_sat());
    EXPECT_TRUE(solve_portfolio(engine, q(10)).is_sat());  // touch: q10 is now MRU
    EXPECT_EQ(engine.stats().cache_hits, 1u);
    EXPECT_TRUE(solve_portfolio(engine, q(30)).is_sat());  // evicts q20 (LRU)
    EXPECT_EQ(engine.cache().size(), 2u);
    EXPECT_EQ(engine.cache().stats().evictions, 1u);
    // q10 stayed resident, q20 was evicted and must re-solve.
    EXPECT_TRUE(solve_portfolio(engine, q(10)).is_sat());
    EXPECT_EQ(engine.stats().cache_hits, 2u);
    const auto runs = engine.stats().solver_runs;
    EXPECT_TRUE(solve_portfolio(engine, q(20)).is_sat());
    EXPECT_EQ(engine.stats().solver_runs, runs + 1);
}

TEST(query_cache_lru, unbounded_by_default) {
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 8);
    smt_engine engine(tm);
    for (std::uint64_t i = 0; i < 16; ++i)
        EXPECT_TRUE(solve_portfolio(engine, {tm.mk_ult(x, tm.mk_bv_const(8, 100 + i))}).is_sat());
    EXPECT_EQ(engine.cache().size(), 16u);
    EXPECT_EQ(engine.cache().stats().evictions, 0u);
}

// ---- application routing ----------------------------------------------------

const char* modexp_src = R"(
int modexp(int base, int exponent) {
  int result = 1;
  int b = base;
  int i = 0;
  while (i < 4) bound 4 {
    if (exponent & 1) { result = (result * b) % 1000003; }
    b = (b * b) % 1000003;
    exponent = exponent >> 1;
    i = i + 1;
  }
  return result;
}
)";

TEST(application_routing, gametime_sharded_wcet_matches_plain) {
    ir::program p = ir::parse_program(modexp_src);
    ir::function f = ir::resolve_static_branches(
        ir::unroll_loops(*p.find_function("modexp")), p.width);
    ir::cfg g = ir::cfg::build(p, f);

    smt::term_manager tm_basis;
    substrate::smt_engine basis_engine(tm_basis);
    gametime::basis_info basis = gametime::extract_basis_paths(g, basis_engine);
    gametime::sarm_platform platform(p, f);
    gametime::timing_model model = gametime::learn_timing_model(basis, platform);

    // Fresh engines so the WCET feasibility query actually solves (no cache
    // carry-over from extraction): sharded and plain must agree on the
    // longest path and its predicted time.
    smt::term_manager tm_plain;
    substrate::smt_engine plain(tm_plain);
    auto expected = gametime::predict_wcet(g, model, plain);

    smt::term_manager tm_shard;
    substrate::smt_engine sharded(tm_shard, {.threads = 2, .shard_depth = 2});
    auto got = gametime::predict_wcet(g, model, sharded);

    ASSERT_TRUE(expected.has_value());
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(expected->longest, got->longest);
    EXPECT_DOUBLE_EQ(expected->predicted_cycles, got->predicted_cycles);
}

TEST(application_routing, gametime_sharded_wcet_with_sharing_matches_plain) {
    // Same pipeline as above, but the shard's sibling pairs exchange
    // core-clean learnt clauses (deterministic discipline). The WCET
    // verdict must be unchanged — sharing only redistributes proof work.
    ir::program p = ir::parse_program(modexp_src);
    ir::function f = ir::resolve_static_branches(
        ir::unroll_loops(*p.find_function("modexp")), p.width);
    ir::cfg g = ir::cfg::build(p, f);

    smt::term_manager tm_basis;
    substrate::smt_engine basis_engine(tm_basis);
    gametime::basis_info basis = gametime::extract_basis_paths(g, basis_engine);
    gametime::sarm_platform platform(p, f);
    gametime::timing_model model = gametime::learn_timing_model(basis, platform);

    smt::term_manager tm_plain;
    substrate::smt_engine plain(tm_plain);
    auto expected = gametime::predict_wcet(g, model, plain);

    substrate::engine_config cfg;
    cfg.threads = 2;
    cfg.shard_depth = 2;
    cfg.sharing.enabled = true;
    cfg.sharing.deterministic = true;
    cfg.sharing.slice_conflicts = 200;
    smt::term_manager tm_shared;
    substrate::smt_engine shared(tm_shared, cfg);
    auto got = gametime::predict_wcet(g, model, shared);

    ASSERT_TRUE(expected.has_value());
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(expected->longest, got->longest);
    EXPECT_DOUBLE_EQ(expected->predicted_cycles, got->predicted_cycles);
}

TEST(application_routing, invgen_sharded_step_proof_matches_sequential) {
    aig::aig circuit;
    auto a = circuit.add_latch(true);
    auto b = circuit.add_latch(true);
    circuit.set_latch_next(a, b);
    circuit.set_latch_next(b, a);
    auto result = invgen::generate_invariants(circuit, {.simulation_rounds = 2});
    bool sequential = invgen::prove_with_invariants(circuit, a, result.proven);
    bool sharded = invgen::prove_with_invariants(circuit, a, result.proven,
                                                 {.shard_depth = 2, .shard_threads = 2});
    EXPECT_EQ(sequential, sharded);
    EXPECT_TRUE(sharded);

    // And a non-inductive property is rejected identically.
    aig::aig loose;
    auto in = loose.add_input();
    auto l = loose.add_latch(true);
    loose.set_latch_next(l, in);
    bool seq_loose = invgen::prove_with_invariants(loose, l, {});
    bool shard_loose = invgen::prove_with_invariants(loose, l, {},
                                                     {.shard_depth = 2, .shard_threads = 2});
    EXPECT_EQ(seq_loose, shard_loose);
    EXPECT_FALSE(shard_loose);

    // With pair-to-pair clause sharing on the inductive step, the verdicts
    // are still identical (sharing is sound: learnt clauses are formula
    // consequences).
    invgen::proof_config sharing_cfg;
    sharing_cfg.shard_depth = 2;
    sharing_cfg.shard_threads = 2;
    sharing_cfg.sharing.enabled = true;
    sharing_cfg.sharing.deterministic = true;
    EXPECT_TRUE(invgen::prove_with_invariants(circuit, a, result.proven, sharing_cfg));
    EXPECT_FALSE(invgen::prove_with_invariants(loose, l, {}, sharing_cfg));
}

TEST(application_routing, ogis_overlapped_pipeline_synthesizes_correct_program) {
    auto bench = ogis::benchmark_p1_interchange();
    bench.config.overlap_queries = true;
    bench.config.oracle_threads = 2;
    bench.config.engine.threads = 2;
    auto outcome = ogis::run_benchmark(bench);
    ASSERT_EQ(outcome.status, core::loop_status::success);
    ASSERT_TRUE(outcome.program.has_value());
    // The synthesized program must agree with the reference semantics.
    util::rng rng(123);
    for (int t = 0; t < 64; ++t) {
        ogis::io_vector in{rng.next_u64() & 0xffffffffULL, rng.next_u64() & 0xffffffffULL};
        EXPECT_EQ(outcome.program->eval(bench.config.library, in), bench.reference(in));
    }
    EXPECT_GT(outcome.stats.oracle_queries, 0u);
}

TEST(application_routing, ogis_parallel_seed_labelling_matches_sequential) {
    auto sequential_bench = ogis::benchmark_rightmost_off();
    auto sequential = ogis::run_benchmark(sequential_bench);
    ASSERT_EQ(sequential.status, core::loop_status::success);

    auto parallel_bench = ogis::benchmark_rightmost_off();
    parallel_bench.config.oracle_threads = 4;
    auto parallel = ogis::run_benchmark(parallel_bench);
    ASSERT_EQ(parallel.status, core::loop_status::success);

    // Same seeds, same labels, same loop: identical program and history.
    EXPECT_EQ(sequential.program->to_string(sequential_bench.config.library),
              parallel.program->to_string(parallel_bench.config.library));
    EXPECT_EQ(sequential.stats.iterations, parallel.stats.iterations);
    EXPECT_EQ(sequential.stats.oracle_queries, parallel.stats.oracle_queries);
}

}  // namespace
}  // namespace sciduction::substrate
