#include <gtest/gtest.h>

#include <sstream>

#include "core/hypothesis.hpp"
#include "core/loops.hpp"

namespace sciduction::core {
namespace {

// ---- reporting ----------------------------------------------------------------

TEST(hypothesis, report_rendering) {
    soundness_report r;
    r.hypothesis = {"toy hypothesis", "all toys", "always", true};
    r.guarantee = guarantee_kind::probabilistically_sound;
    r.confidence = 0.99;
    std::ostringstream os;
    os << r;
    std::string s = os.str();
    EXPECT_NE(s.find("toy hypothesis"), std::string::npos);
    EXPECT_NE(s.find("probabilistically sound"), std::string::npos);
    EXPECT_NE(s.find("0.99"), std::string::npos);
    EXPECT_EQ(to_string(guarantee_kind::sound), "sound");
    EXPECT_EQ(to_string(guarantee_kind::sound_and_complete), "sound and complete");
}

// ---- CEGIS loop ------------------------------------------------------------------
// Toy instance: synthesize a threshold t in [0, 100] such that t >= all
// secret samples; verifier knows the secret maximum.

TEST(cegis, converges_with_counterexamples) {
    const int secret_max = 37;
    auto synthesize = [](const std::vector<int>& examples) -> std::optional<int> {
        int t = 0;
        for (int e : examples) t = std::max(t, e);
        return t;
    };
    auto verify = [&](const int& candidate) -> std::optional<int> {
        if (candidate >= secret_max) return std::nullopt;
        return candidate + 1;  // a sample the candidate misses
    };
    auto result = run_cegis<int, int>(synthesize, verify, 1000);
    ASSERT_EQ(result.status, loop_status::success);
    EXPECT_EQ(*result.artifact, secret_max);
    EXPECT_EQ(result.iterations, static_cast<int>(result.examples.size()) + 1);
}

TEST(cegis, unrealizable_detected) {
    auto synthesize = [](const std::vector<int>& examples) -> std::optional<int> {
        if (examples.size() > 2) return std::nullopt;  // learner gives up
        return 0;
    };
    auto verify = [](const int&) -> std::optional<int> { return 1; };  // always rejects
    auto result = run_cegis<int, int>(synthesize, verify, 100);
    EXPECT_EQ(result.status, loop_status::unrealizable);
    EXPECT_FALSE(result.artifact.has_value());
}

TEST(cegis, budget_exhaustion) {
    auto synthesize = [](const std::vector<int>&) -> std::optional<int> { return 0; };
    auto verify = [](const int&) -> std::optional<int> { return 1; };
    auto result = run_cegis<int, int>(synthesize, verify, 5);
    EXPECT_EQ(result.status, loop_status::budget_exhausted);
    EXPECT_EQ(result.iterations, 6);  // loop ran max_iterations times
}

TEST(cegis, initial_examples_consumed) {
    auto synthesize = [](const std::vector<int>& examples) -> std::optional<int> {
        int t = 0;
        for (int e : examples) t = std::max(t, e);
        return t;
    };
    auto verify = [](const int& candidate) -> std::optional<int> {
        return candidate >= 10 ? std::nullopt : std::optional<int>(10);
    };
    auto result = run_cegis<int, int>(synthesize, verify, 10, {10});
    EXPECT_EQ(result.status, loop_status::success);
    EXPECT_EQ(result.iterations, 1);  // seeded example solved it immediately
}

// ---- OGIS loop -------------------------------------------------------------------
// Toy instance: learn a secret affine function f(x) = a*x + b with small
// coefficients from an I/O oracle; candidates are (a, b) pairs.

using affine = std::pair<int, int>;

std::optional<affine> synth_affine(const std::vector<std::pair<int, int>>& examples) {
    for (int a = 0; a <= 5; ++a) {
        for (int b = 0; b <= 5; ++b) {
            bool ok = true;
            for (const auto& [x, y] : examples)
                if (a * x + b != y) ok = false;
            if (ok) return affine{a, b};
        }
    }
    return std::nullopt;
}

TEST(ogis, learns_affine_function) {
    const affine secret{3, 2};
    auto distinguish = [](const affine& cand, const std::vector<std::pair<int, int>>& examples)
        -> std::optional<int> {
        // Another consistent candidate differing on some input?
        for (int a = 0; a <= 5; ++a) {
            for (int b = 0; b <= 5; ++b) {
                if (affine{a, b} == cand) continue;
                bool consistent = true;
                for (const auto& [x, y] : examples)
                    if (a * x + b != y) consistent = false;
                if (!consistent) continue;
                for (int x = -10; x <= 10; ++x)
                    if (a * x + b != cand.first * x + cand.second) return x;
            }
        }
        return std::nullopt;
    };
    auto oracle = [&](const int& x) { return secret.first * x + secret.second; };
    auto result = run_ogis<affine, int, int>(synth_affine, distinguish, oracle, 100, {0});
    ASSERT_EQ(result.status, loop_status::success);
    EXPECT_EQ(*result.artifact, secret);
    // Teaching-dimension flavour: two well-chosen points pin an affine map.
    EXPECT_LE(result.oracle_queries, 4u);
}

TEST(ogis, unrealizable_when_oracle_outside_class) {
    auto distinguish = [](const affine&, const std::vector<std::pair<int, int>>&)
        -> std::optional<int> { return std::nullopt; };
    auto oracle = [](const int& x) { return x * x; };  // not affine
    auto result =
        run_ogis<affine, int, int>(synth_affine, distinguish, oracle, 100, {0, 1, 2, 3});
    EXPECT_EQ(result.status, loop_status::unrealizable);
}

TEST(ogis, oracle_query_accounting) {
    const affine secret{1, 0};
    auto distinguish = [](const affine&, const std::vector<std::pair<int, int>>&)
        -> std::optional<int> { return std::nullopt; };  // accept first candidate
    int queries = 0;
    auto oracle = [&](const int& x) {
        ++queries;
        return secret.first * x + secret.second;
    };
    auto result = run_ogis<affine, int, int>(synth_affine, distinguish, oracle, 10, {1, 2});
    EXPECT_EQ(result.status, loop_status::success);
    EXPECT_EQ(result.oracle_queries, 2u);
    EXPECT_EQ(queries, 2);
}

}  // namespace
}  // namespace sciduction::core
