#include <gtest/gtest.h>

#include "invgen/invgen.hpp"

namespace sciduction::invgen {
namespace {

using aig::literal;
using aig::negate;

/// A latch that is stuck at its initial value (next = self).
aig::aig stuck_latch_circuit() {
    aig::aig g;
    literal in = g.add_input();
    literal stuck = g.add_latch(false);
    literal free_latch = g.add_latch(false);
    g.set_latch_next(stuck, stuck);
    g.set_latch_next(free_latch, in);
    g.add_output(stuck);
    return g;
}

TEST(invgen, discovers_stuck_at_constant) {
    aig::aig g = stuck_latch_circuit();
    invgen_result r = generate_invariants(g);
    bool found = false;
    for (const candidate& c : r.proven)
        if (c.k == candidate::kind::constant && c.lhs == negate(g.latch_literal(0)))
            found = true;
    EXPECT_TRUE(found) << "stuck-at-0 latch not proven constant";
    // The input-fed latch must NOT be claimed constant.
    for (const candidate& c : r.proven)
        EXPECT_NE(aig::var_of(c.lhs), aig::var_of(g.latch_literal(1)))
            << "free latch wrongly constrained: " << c.to_string();
}

TEST(invgen, discovers_equivalent_latches) {
    // Two latches fed by identical logic stay equal in all reachable states.
    aig::aig g;
    literal in = g.add_input();
    literal l1 = g.add_latch(false);
    literal l2 = g.add_latch(false);
    g.set_latch_next(l1, in);
    g.set_latch_next(l2, in);
    invgen_result r = generate_invariants(g);
    bool found = false;
    for (const candidate& c : r.proven) {
        if (c.k != candidate::kind::equivalence) continue;
        auto v1 = aig::var_of(c.lhs);
        auto v2 = aig::var_of(c.rhs);
        if ((v1 == aig::var_of(l1) && v2 == aig::var_of(l2)) ||
            (v1 == aig::var_of(l2) && v2 == aig::var_of(l1)))
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(invgen, discovers_antivalent_latches) {
    // l2 always stores the complement of l1.
    aig::aig g;
    literal in = g.add_input();
    literal l1 = g.add_latch(false);
    literal l2 = g.add_latch(true);
    g.set_latch_next(l1, in);
    g.set_latch_next(l2, negate(in));
    invgen_result r = generate_invariants(g);
    bool found = false;
    for (const candidate& c : r.proven) {
        if (c.k != candidate::kind::equivalence) continue;
        if (aig::var_of(c.lhs) == aig::var_of(l1) && aig::var_of(c.rhs) == aig::var_of(l2) &&
            (aig::negated(c.lhs) != aig::negated(c.rhs)))
            found = true;
        if (aig::var_of(c.lhs) == aig::var_of(l2) && aig::var_of(c.rhs) == aig::var_of(l1) &&
            (aig::negated(c.lhs) != aig::negated(c.rhs)))
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(invgen, induction_drops_simulation_artifacts) {
    // A latch chain fed by an input needs many patterns to decorrelate; with
    // very little simulation the equivalence "l1 == l2" survives simulation
    // but must be killed by the induction check.
    aig::aig g;
    literal in = g.add_input();
    literal l1 = g.add_latch(false);
    literal l2 = g.add_latch(false);
    g.set_latch_next(l1, in);
    g.set_latch_next(l2, g.add_and(in, negate(l1)));  // differs once l1 is set
    invgen_config cfg;
    cfg.simulation_rounds = 1;
    cfg.steps_per_round = 1;  // starved: only the first step after reset
    invgen_result r = generate_invariants(g, cfg);
    for (const candidate& c : r.proven) {
        bool links = (aig::var_of(c.lhs) == aig::var_of(l1) &&
                      aig::var_of(c.rhs) == aig::var_of(l2)) ||
                     (aig::var_of(c.lhs) == aig::var_of(l2) &&
                      aig::var_of(c.rhs) == aig::var_of(l1));
        EXPECT_FALSE(c.k == candidate::kind::equivalence && links)
            << "unsound equivalence survived: " << c.to_string();
    }
}

/// Mod-6 counter over 3 bits: s' = (s == 5) ? 0 : s + 1. The unreachable
/// state 6 steps to 7, so the property "state != 7" is true but NOT
/// 1-inductive on its own (counterexample-to-induction: 6 -> 7); the
/// simulation-derived invariant !(b2 & b1) (states 6 and 7 unreachable)
/// makes it inductive. This is exactly the shape where the paper's
/// invariant-generation instance earns its keep.
aig::aig mod6_counter(literal* bits_out, literal* prop_out) {
    aig::aig g;
    literal b0 = g.add_latch(false);
    literal b1 = g.add_latch(false);
    literal b2 = g.add_latch(false);
    // Increment: carry chain.
    literal c0 = b0;
    literal s0 = negate(b0);
    literal s1 = g.add_xor(b1, c0);
    literal c1 = g.add_and(b1, c0);
    literal s2 = g.add_xor(b2, c1);
    // eq5 = b2 & !b1 & b0
    literal eq5 = g.add_and(g.add_and(b2, negate(b1)), b0);
    g.set_latch_next(b0, g.add_and(negate(eq5), s0));
    g.set_latch_next(b1, g.add_and(negate(eq5), s1));
    g.set_latch_next(b2, g.add_and(negate(eq5), s2));
    // bad = b2 & b1 & b0 (state 7); the sub-node b2&b1 is the invariant seed.
    literal bad = g.add_and(g.add_and(b2, b1), b0);
    literal prop = negate(bad);
    g.add_output(prop);
    bits_out[0] = b0;
    bits_out[1] = b1;
    bits_out[2] = b2;
    *prop_out = prop;
    return g;
}

TEST(invgen, mod6_counter_needs_invariant_strengthening) {
    literal bits[3];
    literal prop;
    aig::aig g = mod6_counter(bits, &prop);
    invgen_result inv = generate_invariants(g);
    EXPECT_FALSE(inv.proven.empty());
    // Plain 1-induction cannot prove it (CTI: unreachable 6 steps to 7)...
    EXPECT_FALSE(prove_with_invariants(g, prop, {}));
    // ...but with the generated invariants it goes through.
    EXPECT_TRUE(prove_with_invariants(g, prop, inv.proven));
    // The key invariant !(b2 & b1) was among the proven set.
    bool found = false;
    for (const candidate& c : inv.proven)
        if (c.k == candidate::kind::constant) found = true;
    EXPECT_TRUE(found);
}

TEST(invgen, soundness_buggy_property_never_proven) {
    // prove_with_invariants must never "prove" a falsifiable property.
    aig::aig g;
    literal in = g.add_input();
    literal l = g.add_latch(false);
    g.set_latch_next(l, in);
    literal prop = negate(l);  // fails as soon as the input is 1
    invgen_result inv = generate_invariants(g);
    EXPECT_FALSE(prove_with_invariants(g, prop, inv.proven));
}

TEST(invgen, statistics_and_report) {
    aig::aig g = stuck_latch_circuit();
    invgen_result r = generate_invariants(g);
    EXPECT_GE(r.candidates_after_simulation, r.proven.size());
    EXPECT_NE(r.report.hypothesis.name.find("constants"), std::string::npos);
    candidate c{candidate::kind::equivalence, aig::mk_literal(2), aig::mk_literal(3, true)};
    EXPECT_EQ(c.to_string(), "n2 == !n3");
}

TEST(invgen, implications_optional) {
    // in-gated chain: l2 high implies l1 was high; enable implications.
    aig::aig g;
    literal in = g.add_input();
    literal l1 = g.add_latch(false);
    literal l2 = g.add_latch(false);
    g.set_latch_next(l1, g.add_or(in, l1));       // latches 1 forever once set
    g.set_latch_next(l2, g.add_and(in, l1));      // can only set after l1
    invgen_config cfg;
    cfg.include_implications = true;
    invgen_result r = generate_invariants(g, cfg);
    bool found = false;
    for (const candidate& c : r.proven)
        if (c.k == candidate::kind::implication && aig::var_of(c.lhs) == aig::var_of(l2) &&
            aig::var_of(c.rhs) == aig::var_of(l1) && !aig::negated(c.lhs) && !aig::negated(c.rhs))
            found = true;
    EXPECT_TRUE(found) << "l2 -> l1 not proven";
}

}  // namespace
}  // namespace sciduction::invgen
