// sciductiond end-to-end: multi-tenant fairness under a greedy job,
// cancel and disconnect cleanup, protocol edge cases (truncated /
// oversized / unknown frames), bounded admission, and graceful-drain
// cache persistence. The server runs in-process on a background thread;
// clients talk to it over a real unix-domain socket.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "service/server.hpp"
#include "smt/term.hpp"

namespace sciduction::service {
namespace {

using namespace std::chrono_literals;

std::string unique_path(const std::string& stem) {
    static std::atomic<unsigned> counter{0};
    return "/tmp/sciduction_" + stem + "_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1));
}

/// In-process daemon on a fresh socket; joins (via drain) on destruction.
struct daemon {
    explicit daemon(server_config cfg) : config(std::move(cfg)) {
        if (config.socket_path.empty()) config.socket_path = unique_path("sock");
        srv = std::make_unique<server>(config);
        thread = std::thread([this] { served = srv->run(); });
        while (!srv->serving()) std::this_thread::sleep_for(1ms);
    }
    ~daemon() { stop(); }
    void stop() {
        if (!thread.joinable()) return;
        srv->request_stop();
        thread.join();
    }

    server_config config;
    std::unique_ptr<server> srv;
    std::thread thread;
    std::uint64_t served = 0;
};

/// The greedy job: a width-12 multiplier distributivity refutation
/// (minutes-hard), sharded so its cube tasks saturate the whole pool.
/// Unbounded on purpose — every test that submits it either cancels it or
/// lets a daemon mechanism (deadline, disconnect, drain) resolve it, so
/// assertions never race against how fast the solver happens to be.
/// Deterministic sharing selects the sliced rounds scheduler, whose
/// round barriers are the pool's preemption points: a worker leaves the
/// greedy job for other lanes at most one conflict slice after competing
/// work arrives.
substrate::solve_request greedy_request(smt::term_manager& tm) {
    smt::term x = tm.mk_bv_var("gx", 12);
    smt::term y = tm.mk_bv_var("gy", 12);
    substrate::solve_request req;
    req.assertions = {
        tm.mk_distinct(tm.mk_bvmul(x, tm.mk_bvadd(y, y)),
                       tm.mk_bvadd(tm.mk_bvmul(x, y), tm.mk_bvmul(x, y)))};
    req.strategy = substrate::strategy::shard(2);
    req.strategy.use_cache = false;
    substrate::sharing_config sharing;
    sharing.enabled = true;
    sharing.deterministic = true;
    sharing.slice_conflicts = 1000;
    req.strategy.sharing = sharing;
    return req;
}

substrate::solve_request tiny_request(smt::term_manager& tm, std::uint64_t i) {
    smt::term x = tm.mk_bv_var("x", 16);
    substrate::solve_request req;
    req.assertions = {tm.mk_eq(x, tm.mk_bv_const(16, i)),
                      tm.mk_ult(x, tm.mk_bv_const(16, 1000))};
    req.strategy = substrate::strategy::single();
    return req;
}

void wait_until_started(client& cli, std::uint64_t id) {
    while (true) {
        const progress_message p = cli.progress(id);
        if (!p.known || p.started) return;
        std::this_thread::sleep_for(1ms);
    }
}

// ---- fairness ---------------------------------------------------------------

TEST(service_fairness, tiny_tenant_finishes_ahead_of_greedy_tenant) {
    daemon d({.socket_path = {}, .threads = 2, .queue_depth = 64});
    smt::term_manager tm_greedy;
    smt::term_manager tm_tiny;
    client greedy(tm_greedy, d.config.socket_path, "greedy");
    client tiny(tm_tiny, d.config.socket_path, "tiny");

    const submit_outcome big = greedy.submit(greedy_request(tm_greedy));
    ASSERT_TRUE(big.accepted);
    wait_until_started(greedy, big.request_id);

    std::vector<std::uint64_t> tiny_ids;
    for (std::uint64_t i = 0; i < 6; ++i) {
        const submit_outcome out = tiny.submit(tiny_request(tm_tiny, i));
        ASSERT_TRUE(out.accepted) << out.detail;
        tiny_ids.push_back(out.request_id);
    }
    // The greedy shard job owns every pool worker when the burst arrives;
    // fair lanes must still complete each tiny query while it runs. With
    // an unfair scheduler these awaits would starve behind the unbounded
    // job — completing at all is the bounded-queue-wait assertion.
    std::uint64_t max_tiny_seq = 0;
    for (std::uint64_t id : tiny_ids) {
        const result_message r = tiny.await(id);
        EXPECT_EQ(r.ans, substrate::answer::sat);
        max_tiny_seq = std::max(max_tiny_seq, r.finish_seq);
    }
    EXPECT_TRUE(greedy.cancel(big.request_id));
    const result_message big_result = greedy.await(big.request_id);
    EXPECT_EQ(big_result.status, substrate::solve_status::cancelled);
    // Deterministic order via the daemon's global completion sequence.
    EXPECT_LT(max_tiny_seq, big_result.finish_seq);
}

// ---- cancel paths -----------------------------------------------------------

TEST(service_cancel, after_completion_is_benign_and_inflight_cancels) {
    daemon d({.socket_path = {}, .threads = 2});
    smt::term_manager tm;
    client cli(tm, d.config.socket_path, "tenant");

    // Completed request: cancel answers found=false, daemon stays up.
    const submit_outcome done = cli.submit(tiny_request(tm, 1));
    ASSERT_TRUE(done.accepted);
    EXPECT_EQ(cli.await(done.request_id).ans, substrate::answer::sat);
    EXPECT_FALSE(cli.cancel(done.request_id));

    // In-flight request: cancel resolves it as cancelled.
    const submit_outcome big = cli.submit(greedy_request(tm));
    ASSERT_TRUE(big.accepted);
    wait_until_started(cli, big.request_id);
    EXPECT_TRUE(cli.cancel(big.request_id));
    const result_message r = cli.await(big.request_id);
    EXPECT_EQ(r.ans, substrate::answer::unknown);
    EXPECT_EQ(r.status, substrate::solve_status::cancelled);

    // Queued-behind-the-barrier request: a hard solve holds the tenant
    // busy, so the next submit waits undecoded; cancelling it answers
    // without ever dispatching.
    const submit_outcome blocker = cli.submit(greedy_request(tm));
    ASSERT_TRUE(blocker.accepted);
    wait_until_started(cli, blocker.request_id);
    const submit_outcome queued = cli.submit(tiny_request(tm, 2));
    ASSERT_TRUE(queued.accepted);
    EXPECT_TRUE(cli.cancel(queued.request_id));
    const result_message rq = cli.await(queued.request_id);
    EXPECT_EQ(rq.status, substrate::solve_status::cancelled);
    EXPECT_TRUE(cli.cancel(blocker.request_id));
    EXPECT_EQ(cli.await(blocker.request_id).status, substrate::solve_status::cancelled);
    EXPECT_EQ(cli.stats().at("server.cancels"), 3u);
}

TEST(service_cancel, disconnect_mid_solve_reclaims_the_tenant) {
    daemon d({.socket_path = {}, .threads = 2});
    smt::term_manager tm_a;
    smt::term_manager tm_b;
    {
        client doomed(tm_a, d.config.socket_path, "doomed");
        const submit_outcome big = doomed.submit(greedy_request(tm_a));
        ASSERT_TRUE(big.accepted);
        wait_until_started(doomed, big.request_id);
    }  // socket closes with the solve in flight
    client watcher(tm_b, d.config.socket_path, "watcher");
    // The daemon cancels the orphaned solve and reclaims the session.
    while (true) {
        const auto stats = watcher.stats();
        if (stats.at("server.disconnect_cancels") >= 1 && stats.at("server.inflight") == 0) break;
        std::this_thread::sleep_for(2ms);
    }
    // And keeps serving.
    const submit_outcome out = watcher.submit(tiny_request(tm_b, 3));
    ASSERT_TRUE(out.accepted);
    EXPECT_EQ(watcher.await(out.request_id).ans, substrate::answer::sat);
}

// ---- admission control ------------------------------------------------------

TEST(service_admission, bounded_queue_rejects_overflow_not_the_daemon) {
    daemon d({.socket_path = {}, .threads = 2, .queue_depth = 2});
    smt::term_manager tm;
    client cli(tm, d.config.socket_path, "tenant");
    const submit_outcome first = cli.submit(greedy_request(tm));
    const submit_outcome second = cli.submit(greedy_request(tm));
    ASSERT_TRUE(first.accepted);
    ASSERT_TRUE(second.accepted);
    // Third of a depth-2 tenant: rejected, with the reason on the wire.
    smt::term extra = tm.mk_bv_var("extra", 8);
    substrate::solve_request req;
    req.assertions = {tm.mk_ult(extra, tm.mk_bv_const(8, 5))};
    const submit_outcome third = cli.submit(req);
    EXPECT_FALSE(third.accepted);
    EXPECT_EQ(third.reason, reject_reason::queue_full);
    EXPECT_EQ(cli.stats().at("server.rejected_queue_full"), 1u);
    // The rejected slot is not leaked: cancel one, the next submit fits.
    EXPECT_TRUE(cli.cancel(first.request_id));
    (void)cli.await(first.request_id);
    const submit_outcome retry = cli.submit(req);
    EXPECT_TRUE(retry.accepted);
    EXPECT_TRUE(cli.cancel(second.request_id));
    EXPECT_TRUE(cli.cancel(retry.request_id) || true);  // may already be done
    (void)cli.await(second.request_id);
    (void)cli.await(retry.request_id);
}

TEST(service_admission, malformed_strategy_travels_back_as_malformed_status) {
    daemon d({.socket_path = {}, .threads = 1});
    smt::term_manager tm;
    client cli(tm, d.config.socket_path, "tenant");
    substrate::solve_request req = tiny_request(tm, 4);
    req.strategy.members = 0;  // rejected by validate() at submit
    const submit_outcome out = cli.submit(req);
    ASSERT_TRUE(out.accepted);
    const result_message r = cli.await(out.request_id);
    EXPECT_EQ(r.ans, substrate::answer::unknown);
    EXPECT_EQ(r.status, substrate::solve_status::malformed);
    EXPECT_NE(r.status_detail.find("members"), std::string::npos);
}

// ---- protocol edge cases ----------------------------------------------------

/// Raw socket for speaking deliberately broken protocol.
struct raw_socket {
    explicit raw_socket(const std::string& path) {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
            ::close(fd);
            fd = -1;
        }
    }
    ~raw_socket() {
        if (fd >= 0) ::close(fd);
    }
    void send(const std::vector<std::uint8_t>& bytes) const {
        ASSERT_EQ(::write(fd, bytes.data(), bytes.size()),
                  static_cast<ssize_t>(bytes.size()));
    }
    /// Reads one whole frame (discarding the payload); returns the opcode
    /// (0 on EOF).
    std::uint8_t read_opcode() const {
        std::uint8_t header[5];
        if (!read_exact(header, sizeof(header))) return 0;
        std::uint32_t len = 0;
        for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
        std::vector<std::uint8_t> payload(len - 1);
        if (!payload.empty() && !read_exact(payload.data(), payload.size())) return 0;
        return header[4];
    }
    bool read_exact(std::uint8_t* dst, std::size_t n) const {
        std::size_t off = 0;
        while (off < n) {
            const ssize_t got = ::read(fd, dst + off, n - off);
            if (got <= 0) return false;
            off += static_cast<std::size_t>(got);
        }
        return true;
    }
    int fd = -1;
};

std::vector<std::uint8_t> hello_frame() {
    wire_writer w;
    w.u32(protocol_version);
    w.str("raw");
    w.u32(1);
    return pack_frame({op::hello, w.take()});
}

TEST(service_protocol, truncated_frame_then_disconnect_is_harmless) {
    daemon d({.socket_path = {}, .threads = 1});
    {
        raw_socket raw(d.config.socket_path);
        ASSERT_GE(raw.fd, 0);
        std::vector<std::uint8_t> partial = hello_frame();
        partial.resize(partial.size() / 2);  // cut mid-frame
        raw.send(partial);
    }  // disconnect with the frame half-sent
    smt::term_manager tm;
    client cli(tm, d.config.socket_path, "after");
    const submit_outcome out = cli.submit(tiny_request(tm, 5));
    ASSERT_TRUE(out.accepted);
    EXPECT_EQ(cli.await(out.request_id).ans, substrate::answer::sat);
}

TEST(service_protocol, oversized_frame_draws_error_and_close) {
    daemon d({.socket_path = {}, .threads = 1});
    raw_socket raw(d.config.socket_path);
    ASSERT_GE(raw.fd, 0);
    const std::uint32_t huge = max_frame_bytes + 1;
    std::vector<std::uint8_t> bytes;
    for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<std::uint8_t>(huge >> (8 * i)));
    raw.send(bytes);
    EXPECT_EQ(raw.read_opcode(), static_cast<std::uint8_t>(op::error));
    EXPECT_EQ(raw.read_opcode(), 0u);  // daemon closed the connection
}

TEST(service_protocol, unknown_opcode_draws_error_and_close) {
    daemon d({.socket_path = {}, .threads = 1});
    raw_socket raw(d.config.socket_path);
    ASSERT_GE(raw.fd, 0);
    raw.send(hello_frame());
    EXPECT_EQ(raw.read_opcode(), static_cast<std::uint8_t>(op::hello_ok));
    raw.send(pack_frame({static_cast<op>(0x6f), {}}));
    EXPECT_EQ(raw.read_opcode(), static_cast<std::uint8_t>(op::error));
    EXPECT_EQ(raw.read_opcode(), 0u);
    // The daemon itself is unscathed.
    smt::term_manager tm;
    client cli(tm, d.config.socket_path, "after");
    EXPECT_GE(cli.stats().at("server.protocol_errors"), 1u);
}

TEST(service_protocol, garbage_submit_payload_is_rejected_not_fatal) {
    daemon d({.socket_path = {}, .threads = 1});
    raw_socket raw(d.config.socket_path);
    ASSERT_GE(raw.fd, 0);
    raw.send(hello_frame());
    EXPECT_EQ(raw.read_opcode(), static_cast<std::uint8_t>(op::hello_ok));
    // A submit whose term block lies about its node count: admitted (the
    // id parses), then rejected at decode with reason `protocol`.
    wire_writer w;
    w.u64(7);         // request id
    w.u32(1000000);   // node count with no nodes behind it
    raw.send(pack_frame({op::submit, w.take()}));
    EXPECT_EQ(raw.read_opcode(), static_cast<std::uint8_t>(op::submit_ack));
    EXPECT_EQ(raw.read_opcode(), static_cast<std::uint8_t>(op::reject));
}

// ---- graceful drain / persistence -------------------------------------------

TEST(service_drain, finish_policy_persists_the_cache_across_restart) {
    const std::string socket_path = unique_path("drain_sock");
    const std::string cache_path = unique_path("cache") + ".qc";
    std::remove(cache_path.c_str());
    {
        daemon d({.socket_path = socket_path, .cache_path = cache_path, .threads = 2});
        smt::term_manager tm;
        client cli(tm, socket_path, "warmup");
        const submit_outcome out = cli.submit(tiny_request(tm, 6));
        ASSERT_TRUE(out.accepted);
        const result_message r = cli.await(out.request_id);
        EXPECT_EQ(r.ans, substrate::answer::sat);
        EXPECT_FALSE(r.cache_hit);
        cli.drain(drain_policy::finish);
        d.stop();
        EXPECT_EQ(d.served, 1u);
    }
    {
        daemon d({.socket_path = socket_path, .cache_path = cache_path, .threads = 2});
        smt::term_manager tm;
        client cli(tm, socket_path, "warm");  // a different tenant/manager
        EXPECT_GT(cli.stats().at("cache.persisted_loads"), 0u);
        const submit_outcome out = cli.submit(tiny_request(tm, 6));
        ASSERT_TRUE(out.accepted);
        const result_message r = cli.await(out.request_id);
        EXPECT_EQ(r.ans, substrate::answer::sat);
        // Served structurally from the previous daemon's saved cache.
        EXPECT_TRUE(r.cache_hit);
    }
    std::remove(cache_path.c_str());
}

TEST(service_drain, cancel_policy_resolves_inflight_as_cancelled) {
    daemon d({.socket_path = {}, .threads = 2});
    smt::term_manager tm_a;
    smt::term_manager tm_b;
    client busy(tm_a, d.config.socket_path, "busy");
    const submit_outcome big = busy.submit(greedy_request(tm_a));
    ASSERT_TRUE(big.accepted);
    wait_until_started(busy, big.request_id);
    client ops(tm_b, d.config.socket_path, "ops");
    std::thread drainer([&] { ops.drain(drain_policy::cancel); });
    const result_message r = busy.await(big.request_id);
    EXPECT_EQ(r.ans, substrate::answer::unknown);
    EXPECT_EQ(r.status, substrate::solve_status::cancelled);
    drainer.join();
    d.stop();
}

// ---- observability ----------------------------------------------------------

TEST(service_observability, progress_carries_live_conflicts_and_resolved_strategy) {
    daemon d({.socket_path = {}, .threads = 2});
    smt::term_manager tm;
    client cli(tm, d.config.socket_path, "tenant");
    const submit_outcome big = cli.submit(greedy_request(tm));
    ASSERT_TRUE(big.accepted);
    wait_until_started(cli, big.request_id);
    // Conflicts are sampled at restart/slice boundaries, so they appear
    // shortly after the solve starts; poll until the gauge moves.
    progress_message p;
    while (true) {
        p = cli.progress(big.request_id);
        ASSERT_TRUE(p.known);
        if (p.conflicts > 0) break;
        std::this_thread::sleep_for(2ms);
    }
    EXPECT_EQ(p.strategy, substrate::strategy_kind::shard);
    EXPECT_TRUE(cli.cancel(big.request_id));
    (void)cli.await(big.request_id);
}

TEST(service_observability, trace_opcode_returns_perfetto_shaped_json_with_tenant_track) {
    daemon d({.socket_path = {}, .threads = 2});
    smt::term_manager tm;
    client cli(tm, d.config.socket_path, "traced");
    for (std::uint64_t i = 0; i < 3; ++i) {
        const submit_outcome out = cli.submit(tiny_request(tm, i));
        ASSERT_TRUE(out.accepted);
        EXPECT_EQ(cli.await(out.request_id).ans, substrate::answer::sat);
    }
    const std::string json = cli.trace();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("tenant:traced"), std::string::npos);
    // The server-level request spans and their exact-partition children.
    EXPECT_NE(json.find("\"request\""), std::string::npos);
    EXPECT_NE(json.find("\"queue_wait\""), std::string::npos);
    EXPECT_NE(json.find("\"solve\""), std::string::npos);
    // finish_seq annotations are monotone in the order requests reaped.
    std::vector<std::uint64_t> seqs;
    for (std::size_t pos = 0; (pos = json.find("\"finish_seq\":", pos)) != std::string::npos;) {
        pos += 13;
        seqs.push_back(std::strtoull(json.c_str() + pos, nullptr, 10));
    }
    ASSERT_EQ(seqs.size(), 3u);
    long depth = 0;
    for (char ch : json) {
        if (ch == '{' || ch == '[') ++depth;
        if (ch == '}' || ch == ']') --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(service_observability, stats_carry_per_tenant_slices_and_histogram_percentiles) {
    daemon d({.socket_path = {}, .threads = 2});
    smt::term_manager tm;
    client cli(tm, d.config.socket_path, "alice");
    for (std::uint64_t i = 0; i < 4; ++i) {
        const submit_outcome out = cli.submit(tiny_request(tm, i));
        ASSERT_TRUE(out.accepted);
        EXPECT_EQ(cli.await(out.request_id).ans, substrate::answer::sat);
    }
    const auto stats = cli.stats();
    EXPECT_EQ(stats.at("tenant.alice.queries"), 4u);
    EXPECT_EQ(stats.at("tenant.alice.completed"), 4u);
    EXPECT_EQ(stats.at("tenant.alice.ok"), 4u);
    EXPECT_EQ(stats.at("server.service_ms.count"), 4u);
    EXPECT_TRUE(stats.count("server.service_ms.p50"));
    EXPECT_TRUE(stats.count("server.queue_wait_ms.p99"));
    EXPECT_TRUE(stats.count("server.conflicts.p90"));
    EXPECT_TRUE(stats.count("pool.lane_wait_us.p50"));
    EXPECT_TRUE(stats.count("trace.dropped"));
}

// ---- time budgets over the wire ---------------------------------------------

TEST(service_budget, request_time_budget_maps_to_timeout_status) {
    daemon d({.socket_path = {}, .threads = 2});
    smt::term_manager tm;
    client cli(tm, d.config.socket_path, "tenant");
    substrate::solve_request req = greedy_request(tm);
    req.strategy = substrate::strategy::single();
    req.strategy.use_cache = false;
    req.strategy.time_budget_ms = 50;
    const submit_outcome out = cli.submit(req);
    ASSERT_TRUE(out.accepted);
    const result_message r = cli.await(out.request_id);
    EXPECT_EQ(r.ans, substrate::answer::unknown);
    // The daemon's reaper enforced the deadline and reports it as the
    // request's own timeout, not a daemon-side cancel.
    EXPECT_EQ(r.status, substrate::solve_status::timeout);
}

}  // namespace
}  // namespace sciduction::service
