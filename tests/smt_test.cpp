#include <gtest/gtest.h>

#include "smt/solver.hpp"
#include "util/rng.hpp"

namespace sciduction::smt {
namespace {

TEST(term_manager, hash_consing_dedupes) {
    term_manager tm;
    term x = tm.mk_bv_var("x", 8);
    term a = tm.mk_bvadd(x, tm.mk_bv_const(8, 1));
    term b = tm.mk_bvadd(x, tm.mk_bv_const(8, 1));
    EXPECT_EQ(a, b);
    EXPECT_EQ(tm.mk_bv_var("x", 8), x);
    EXPECT_THROW(tm.mk_bv_var("x", 16), std::invalid_argument);  // width clash
}

TEST(term_manager, constant_folding) {
    term_manager tm;
    term five = tm.mk_bv_const(8, 5);
    term three = tm.mk_bv_const(8, 3);
    EXPECT_EQ(tm.mk_bvadd(five, three), tm.mk_bv_const(8, 8));
    EXPECT_EQ(tm.mk_bvmul(five, three), tm.mk_bv_const(8, 15));
    EXPECT_EQ(tm.mk_bvsub(three, five), tm.mk_bv_const(8, 254));  // wraps
    EXPECT_EQ(tm.mk_bvudiv(five, tm.mk_bv_const(8, 0)), tm.mk_bv_const(8, 255));
    EXPECT_EQ(tm.mk_bvurem(five, tm.mk_bv_const(8, 0)), five);
    EXPECT_EQ(tm.mk_ult(three, five), tm.mk_bool_const(true));
    EXPECT_EQ(tm.mk_slt(tm.mk_bv_const(8, 0xff), tm.mk_bv_const(8, 1)),
              tm.mk_bool_const(true));  // -1 < 1 signed
}

TEST(term_manager, identity_rewrites) {
    term_manager tm;
    term x = tm.mk_bv_var("x", 16);
    term zero = tm.mk_bv_const(16, 0);
    term ones = tm.mk_bv_const(16, 0xffff);
    EXPECT_EQ(tm.mk_bvadd(x, zero), x);
    EXPECT_EQ(tm.mk_bvand(x, zero), zero);
    EXPECT_EQ(tm.mk_bvand(x, ones), x);
    EXPECT_EQ(tm.mk_bvor(x, zero), x);
    EXPECT_EQ(tm.mk_bvxor(x, x), zero);
    EXPECT_EQ(tm.mk_bvsub(x, x), zero);
    EXPECT_EQ(tm.mk_bvmul(x, tm.mk_bv_const(16, 1)), x);
    EXPECT_EQ(tm.mk_bvnot(tm.mk_bvnot(x)), x);
    EXPECT_EQ(tm.mk_eq(x, x), tm.mk_bool_const(true));
    EXPECT_EQ(tm.mk_ule(x, x), tm.mk_bool_const(true));
    EXPECT_EQ(tm.mk_ult(x, x), tm.mk_bool_const(false));
}

TEST(term_manager, boolean_rewrites) {
    term_manager tm;
    term p = tm.mk_bool_var("p");
    EXPECT_EQ(tm.mk_and(p, tm.mk_bool_const(true)), p);
    EXPECT_EQ(tm.mk_and(p, tm.mk_bool_const(false)), tm.mk_bool_const(false));
    EXPECT_EQ(tm.mk_and(p, tm.mk_not(p)), tm.mk_bool_const(false));
    EXPECT_EQ(tm.mk_or(p, tm.mk_not(p)), tm.mk_bool_const(true));
    EXPECT_EQ(tm.mk_not(tm.mk_not(p)), p);
    EXPECT_EQ(tm.mk_xor(p, p), tm.mk_bool_const(false));
    EXPECT_EQ(tm.mk_implies(tm.mk_bool_const(false), p), tm.mk_bool_const(true));
}

TEST(term_manager, extract_concat_extend) {
    term_manager tm;
    term c = tm.mk_bv_const(16, 0xABCD);
    EXPECT_EQ(tm.mk_extract(c, 7, 0), tm.mk_bv_const(8, 0xCD));
    EXPECT_EQ(tm.mk_extract(c, 15, 8), tm.mk_bv_const(8, 0xAB));
    EXPECT_EQ(tm.mk_concat(tm.mk_bv_const(8, 0xAB), tm.mk_bv_const(8, 0xCD)), c);
    EXPECT_EQ(tm.mk_zext(tm.mk_bv_const(8, 0x80), 16), tm.mk_bv_const(16, 0x0080));
    EXPECT_EQ(tm.mk_sext(tm.mk_bv_const(8, 0x80), 16), tm.mk_bv_const(16, 0xFF80));
    term x = tm.mk_bv_var("x", 8);
    EXPECT_EQ(tm.mk_extract(x, 7, 0), x);  // full-range extract is identity
    EXPECT_THROW(tm.mk_extract(x, 8, 0), std::invalid_argument);
}

TEST(evaluator, reference_semantics) {
    term_manager tm;
    term x = tm.mk_bv_var("x", 8);
    term y = tm.mk_bv_var("y", 8);
    env e{{x.id, 200}, {y.id, 100}};
    EXPECT_EQ(tm.evaluate(tm.mk_bvadd(x, y), e), (200 + 100) & 0xff);
    EXPECT_EQ(tm.evaluate(tm.mk_bvmul(x, y), e), (200 * 100) & 0xff);
    EXPECT_EQ(tm.evaluate(tm.mk_bvashr(x, tm.mk_bv_const(8, 1)), e), 0xE4);  // sign fills
    EXPECT_EQ(tm.evaluate(tm.mk_slt(x, y), e), 1u);                          // -56 < 100
    EXPECT_EQ(tm.evaluate(tm.mk_ult(x, y), e), 0u);
    EXPECT_THROW((void)tm.evaluate(tm.mk_bv_var("unbound", 8), env{}), std::out_of_range);
}

// ---- solver: per-operation cross-validation against the evaluator --------------

struct op_case {
    const char* name;
    term (*build)(term_manager&, term, term);
};

term b_add(term_manager& tm, term a, term b) { return tm.mk_bvadd(a, b); }
term b_sub(term_manager& tm, term a, term b) { return tm.mk_bvsub(a, b); }
term b_mul(term_manager& tm, term a, term b) { return tm.mk_bvmul(a, b); }
term b_udiv(term_manager& tm, term a, term b) { return tm.mk_bvudiv(a, b); }
term b_urem(term_manager& tm, term a, term b) { return tm.mk_bvurem(a, b); }
term b_and(term_manager& tm, term a, term b) { return tm.mk_bvand(a, b); }
term b_or(term_manager& tm, term a, term b) { return tm.mk_bvor(a, b); }
term b_xor(term_manager& tm, term a, term b) { return tm.mk_bvxor(a, b); }
term b_shl(term_manager& tm, term a, term b) { return tm.mk_bvshl(a, b); }
term b_lshr(term_manager& tm, term a, term b) { return tm.mk_bvlshr(a, b); }
term b_ashr(term_manager& tm, term a, term b) { return tm.mk_bvashr(a, b); }

class bitblast_op
    : public ::testing::TestWithParam<std::tuple<op_case, unsigned>> {};

TEST_P(bitblast_op, agrees_with_evaluator) {
    auto [op, width] = GetParam();
    util::rng r(0x5eedULL + width);
    for (int iter = 0; iter < 12; ++iter) {
        term_manager tm;
        term x = tm.mk_bv_var("x", width);
        term y = tm.mk_bv_var("y", width);
        term t = op.build(tm, x, y);
        env e{{x.id, r.next_u64() & term_manager::mask(width)},
              {y.id, r.next_u64() & term_manager::mask(width)}};
        // Small shift amounts half the time so both shifter regimes run.
        if (iter % 2 == 0) e[y.id] = r.next_below(width + 2);
        std::uint64_t want = tm.evaluate(t, e);

        smt_solver s(tm);
        s.assert_term(tm.mk_eq(x, tm.mk_bv_const(width, e.at(x.id))));
        s.assert_term(tm.mk_eq(y, tm.mk_bv_const(width, e.at(y.id))));
        s.assert_term(tm.mk_eq(t, tm.mk_bv_const(width, want)));
        ASSERT_EQ(s.check(), check_result::sat) << op.name << " width " << width;

        smt_solver s2(tm);
        s2.assert_term(tm.mk_eq(x, tm.mk_bv_const(width, e.at(x.id))));
        s2.assert_term(tm.mk_eq(y, tm.mk_bv_const(width, e.at(y.id))));
        s2.assert_term(tm.mk_distinct(t, tm.mk_bv_const(width, want)));
        ASSERT_EQ(s2.check(), check_result::unsat) << op.name << " width " << width;
    }
}

INSTANTIATE_TEST_SUITE_P(
    ops, bitblast_op,
    ::testing::Combine(
        ::testing::Values(op_case{"add", b_add}, op_case{"sub", b_sub}, op_case{"mul", b_mul},
                          op_case{"udiv", b_udiv}, op_case{"urem", b_urem},
                          op_case{"and", b_and}, op_case{"or", b_or}, op_case{"xor", b_xor},
                          op_case{"shl", b_shl}, op_case{"lshr", b_lshr},
                          op_case{"ashr", b_ashr}),
        ::testing::Values(1u, 3u, 8u, 13u)),
    [](const auto& info) {
        return std::string(std::get<0>(info.param).name) + "_w" +
               std::to_string(std::get<1>(info.param));
    });

TEST(smt_solver, division_by_zero_semantics) {
    term_manager tm;
    term x = tm.mk_bv_var("x", 8);
    smt_solver s(tm);
    s.assert_term(tm.mk_eq(x, tm.mk_bv_const(8, 77)));
    term zero = tm.mk_bv_const(8, 0);
    term q = tm.mk_bvudiv(x, tm.mk_bvand(x, zero));  // divisor folds to 0? no: x&0 == 0 folds
    term rme = tm.mk_bvurem(x, tm.mk_bvand(x, zero));
    // After folding (x & 0) == 0 these fold too; check via a non-foldable divisor.
    term y = tm.mk_bv_var("y", 8);
    s.assert_term(tm.mk_eq(y, zero));
    s.assert_term(tm.mk_eq(tm.mk_bvudiv(x, y), tm.mk_bv_const(8, 0xff)));
    s.assert_term(tm.mk_eq(tm.mk_bvurem(x, y), tm.mk_bv_const(8, 77)));
    EXPECT_EQ(s.check(), check_result::sat);
    (void)q;
    (void)rme;
}

TEST(smt_solver, shift_beyond_width_saturates) {
    term_manager tm;
    term x = tm.mk_bv_var("x", 8);
    term amt = tm.mk_bv_var("a", 8);
    smt_solver s(tm);
    s.assert_term(tm.mk_eq(x, tm.mk_bv_const(8, 0xff)));
    s.assert_term(tm.mk_eq(amt, tm.mk_bv_const(8, 9)));
    s.assert_term(tm.mk_eq(tm.mk_bvshl(x, amt), tm.mk_bv_const(8, 0)));
    s.assert_term(tm.mk_eq(tm.mk_bvlshr(x, amt), tm.mk_bv_const(8, 0)));
    s.assert_term(tm.mk_eq(tm.mk_bvashr(x, amt), tm.mk_bv_const(8, 0xff)));  // sign fill
    EXPECT_EQ(s.check(), check_result::sat);
}

TEST(smt_solver, signed_comparison_boundaries) {
    term_manager tm;
    smt_solver s(tm);
    term min8 = tm.mk_bv_const(8, 0x80);  // -128
    term max8 = tm.mk_bv_const(8, 0x7f);  // 127
    s.assert_term(tm.mk_slt(min8, max8));
    s.assert_term(tm.mk_slt(min8, tm.mk_bv_const(8, 0)));
    s.assert_term(tm.mk_not(tm.mk_slt(max8, min8)));
    s.assert_term(tm.mk_sle(min8, min8));
    EXPECT_EQ(s.check(), check_result::sat);
}

TEST(smt_solver, model_satisfies_formula) {
    term_manager tm;
    term x = tm.mk_bv_var("x", 12);
    term y = tm.mk_bv_var("y", 12);
    term f = tm.mk_and(tm.mk_ult(x, y),
                       tm.mk_eq(tm.mk_bvadd(x, y), tm.mk_bv_const(12, 100)));
    smt_solver s(tm);
    s.assert_term(f);
    ASSERT_EQ(s.check(), check_result::sat);
    env m = s.model_env();
    EXPECT_EQ(tm.evaluate(f, m), 1u);
    EXPECT_EQ(s.model_value(tm.mk_bvadd(x, y)), 100u);
}

TEST(smt_solver, incremental_assertions_monotone) {
    term_manager tm;
    term x = tm.mk_bv_var("x", 8);
    smt_solver s(tm);
    s.assert_term(tm.mk_ult(x, tm.mk_bv_const(8, 10)));
    ASSERT_EQ(s.check(), check_result::sat);
    s.assert_term(tm.mk_ugt(x, tm.mk_bv_const(8, 5)));
    ASSERT_EQ(s.check(), check_result::sat);
    std::uint64_t v = s.model_value(x);
    EXPECT_GT(v, 5u);
    EXPECT_LT(v, 10u);
    s.assert_term(tm.mk_ugt(x, tm.mk_bv_const(8, 20)));
    EXPECT_EQ(s.check(), check_result::unsat);
}

TEST(smt_solver, check_under_assumptions_not_persistent) {
    term_manager tm;
    term p = tm.mk_bool_var("p");
    smt_solver s(tm);
    s.assert_term(tm.mk_or(p, tm.mk_not(p)));  // tautology, keeps p blasted
    EXPECT_EQ(s.check({p}), check_result::sat);
    EXPECT_EQ(s.check({tm.mk_not(p)}), check_result::sat);  // not stuck with p
    EXPECT_EQ(s.check({p, tm.mk_not(p)}), check_result::unsat);
    EXPECT_EQ(s.check(), check_result::sat);
}

TEST(smt_solver, ite_and_concat_extract_roundtrip) {
    term_manager tm;
    term x = tm.mk_bv_var("x", 16);
    term lo = tm.mk_extract(x, 7, 0);
    term hi = tm.mk_extract(x, 15, 8);
    smt_solver s(tm);
    // Reassembling the halves gives back x, for every x (prove by refutation).
    s.assert_term(tm.mk_distinct(tm.mk_concat(hi, lo), x));
    EXPECT_EQ(s.check(), check_result::unsat);
}

TEST(smt_solver, random_term_dag_fuzz) {
    util::rng r(777);
    for (int iter = 0; iter < 40; ++iter) {
        term_manager tm;
        unsigned w = 1 + static_cast<unsigned>(r.next_below(12));
        term x = tm.mk_bv_var("x", w);
        term y = tm.mk_bv_var("y", w);
        std::vector<term> pool{x, y, tm.mk_bv_const(w, r.next_u64())};
        for (int ops = 0; ops < 10; ++ops) {
            term a = pool[r.next_below(pool.size())];
            term b = pool[r.next_below(pool.size())];
            switch (r.next_below(8)) {
                case 0: pool.push_back(tm.mk_bvadd(a, b)); break;
                case 1: pool.push_back(tm.mk_bvsub(a, b)); break;
                case 2: pool.push_back(tm.mk_bvmul(a, b)); break;
                case 3: pool.push_back(tm.mk_bvxor(a, b)); break;
                case 4: pool.push_back(tm.mk_bvnot(a)); break;
                case 5: pool.push_back(tm.mk_ite(tm.mk_ult(a, b), a, b)); break;
                case 6: pool.push_back(tm.mk_bvshl(a, b)); break;
                default: pool.push_back(tm.mk_bvlshr(a, b)); break;
            }
        }
        term t = pool.back();
        env e{{x.id, r.next_u64() & term_manager::mask(w)},
              {y.id, r.next_u64() & term_manager::mask(w)}};
        std::uint64_t want = tm.evaluate(t, e);
        smt_solver s(tm);
        s.assert_term(tm.mk_eq(x, tm.mk_bv_const(w, e.at(x.id))));
        s.assert_term(tm.mk_eq(y, tm.mk_bv_const(w, e.at(y.id))));
        s.assert_term(tm.mk_distinct(t, tm.mk_bv_const(w, want)));
        ASSERT_EQ(s.check(), check_result::unsat) << "iter " << iter;
    }
}

TEST(printer, renders_smtlib_flavour) {
    term_manager tm;
    term x = tm.mk_bv_var("x", 8);
    std::string s = tm.to_string(tm.mk_bvadd(x, tm.mk_bv_const(8, 3)));
    EXPECT_NE(s.find("bvadd"), std::string::npos);
    EXPECT_NE(s.find("x"), std::string::npos);
    EXPECT_NE(s.find("bv3"), std::string::npos);
}

}  // namespace
}  // namespace sciduction::smt
