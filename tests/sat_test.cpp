#include <gtest/gtest.h>

#include <sstream>

#include "sat/dimacs.hpp"
#include "sat/gates.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace sciduction::sat {
namespace {

TEST(sat_solver, trivial_sat) {
    solver s;
    var a = s.new_var();
    var b = s.new_var();
    s.add_clause(mk_lit(a), mk_lit(b));
    s.add_clause(~mk_lit(a), mk_lit(b));
    EXPECT_EQ(s.solve(), solve_result::sat);
    EXPECT_TRUE(s.model_bool(b));
}

TEST(sat_solver, trivial_unsat) {
    solver s;
    var a = s.new_var();
    s.add_clause(mk_lit(a));
    EXPECT_FALSE(s.add_clause(~mk_lit(a)));
    EXPECT_EQ(s.solve(), solve_result::unsat);
}

TEST(sat_solver, empty_formula_is_sat) {
    solver s;
    s.new_var();
    EXPECT_EQ(s.solve(), solve_result::sat);
}

TEST(sat_solver, tautologies_and_duplicates_handled) {
    solver s;
    var a = s.new_var();
    var b = s.new_var();
    s.add_clause({mk_lit(a), ~mk_lit(a), mk_lit(b)});  // tautology: no-op
    s.add_clause({mk_lit(a), mk_lit(a)});              // duplicate literal
    EXPECT_EQ(s.num_clauses(), 0u);                    // unit propagated, tautology dropped
    EXPECT_EQ(s.solve(), solve_result::sat);
    EXPECT_TRUE(s.model_bool(a));
}

TEST(sat_solver, unit_propagation_chain) {
    solver s;
    std::vector<var> v;
    for (int i = 0; i < 10; ++i) v.push_back(s.new_var());
    for (int i = 0; i + 1 < 10; ++i) s.add_clause(~mk_lit(v[i]), mk_lit(v[i + 1]));
    s.add_clause(mk_lit(v[0]));
    EXPECT_EQ(s.solve(), solve_result::sat);
    for (int i = 0; i < 10; ++i) EXPECT_TRUE(s.model_bool(v[i]));
}

TEST(sat_solver, assumptions_sat_and_unsat) {
    solver s;
    var a = s.new_var();
    var b = s.new_var();
    s.add_clause(~mk_lit(a), mk_lit(b));  // a -> b
    EXPECT_EQ(s.solve({mk_lit(a), ~mk_lit(b)}), solve_result::unsat);
    EXPECT_FALSE(s.conflict_core().empty());
    EXPECT_EQ(s.solve({mk_lit(a), mk_lit(b)}), solve_result::sat);
    // Solver stays reusable after assumption-unsat.
    EXPECT_EQ(s.solve(), solve_result::sat);
}

TEST(sat_solver, conflict_core_subset_of_assumptions) {
    solver s;
    var a = s.new_var();
    var b = s.new_var();
    var c = s.new_var();
    s.add_clause(~mk_lit(a), ~mk_lit(b));  // !(a & b)
    EXPECT_EQ(s.solve({mk_lit(a), mk_lit(b), mk_lit(c)}), solve_result::unsat);
    // The core must only mention the conflicting assumptions (a, b), not c.
    for (lit l : s.conflict_core()) EXPECT_NE(var_of(l), c);
}

// Pigeonhole principle: n+1 pigeons in n holes is unsatisfiable. A classic
// resolution-hard family that exercises clause learning and restarts.
class pigeonhole : public ::testing::TestWithParam<int> {};

TEST_P(pigeonhole, unsat) {
    const int holes = GetParam();
    const int pigeons = holes + 1;
    solver s;
    std::vector<std::vector<var>> x(pigeons, std::vector<var>(holes));
    for (auto& row : x)
        for (auto& v : row) v = s.new_var();
    for (int p = 0; p < pigeons; ++p) {
        clause_lits c;
        for (int h = 0; h < holes; ++h) c.push_back(mk_lit(x[p][h]));
        s.add_clause(c);
    }
    for (int h = 0; h < holes; ++h)
        for (int p1 = 0; p1 < pigeons; ++p1)
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                s.add_clause(~mk_lit(x[p1][h]), ~mk_lit(x[p2][h]));
    EXPECT_EQ(s.solve(), solve_result::unsat);
    EXPECT_GT(s.stats().conflicts, 0u);
}

INSTANTIATE_TEST_SUITE_P(sizes, pigeonhole, ::testing::Values(3, 4, 5, 6, 7));

// Property: agreement with brute force on random small instances, and
// models must actually satisfy the formula.
bool brute_force_sat(int nv, const std::vector<clause_lits>& clauses) {
    for (int m = 0; m < (1 << nv); ++m) {
        bool all = true;
        for (const auto& c : clauses) {
            bool any = false;
            for (lit l : c) {
                bool v = ((m >> var_of(l)) & 1) != 0;
                if (sign_of(l) ? !v : v) {
                    any = true;
                    break;
                }
            }
            if (!any) {
                all = false;
                break;
            }
        }
        if (all) return true;
    }
    return false;
}

class random_cnf : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(random_cnf, matches_brute_force) {
    util::rng r(GetParam());
    for (int iter = 0; iter < 300; ++iter) {
        int nv = 3 + static_cast<int>(r.next_below(8));
        int nc = 2 + static_cast<int>(r.next_below(static_cast<std::uint64_t>(nv) * 5));
        std::vector<clause_lits> clauses;
        for (int i = 0; i < nc; ++i) {
            clause_lits c;
            int len = 1 + static_cast<int>(r.next_below(3));
            for (int j = 0; j < len; ++j)
                c.push_back(mk_lit(static_cast<var>(r.next_below(static_cast<std::uint64_t>(nv))),
                                   r.next_bool()));
            clauses.push_back(c);
        }
        solver s;
        for (int v = 0; v < nv; ++v) s.new_var();
        bool ok = true;
        for (const auto& c : clauses) ok = s.add_clause(c) && ok;
        bool got = ok && s.solve() == solve_result::sat;
        ASSERT_EQ(got, brute_force_sat(nv, clauses)) << "iteration " << iter;
        if (got) {
            for (const auto& c : clauses) {
                bool any = false;
                for (lit l : c) any = any || s.model_lit(l);
                ASSERT_TRUE(any) << "model violates a clause";
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, random_cnf, ::testing::Values(11, 22, 33, 44));

TEST(sat_solver, conflict_budget_gives_unknown) {
    // Large pigeonhole with a tiny budget must give up explicitly (unknown
    // with budget_exhausted() set), not wrongly and not by throwing —
    // exceptions are reserved for programming errors.
    const int holes = 9;
    solver s;
    std::vector<std::vector<var>> x(holes + 1, std::vector<var>(holes));
    for (auto& row : x)
        for (auto& v : row) v = s.new_var();
    for (auto& row : x) {
        clause_lits c;
        for (var v : row) c.push_back(mk_lit(v));
        s.add_clause(c);
    }
    for (int h = 0; h < holes; ++h)
        for (int p1 = 0; p1 <= holes; ++p1)
            for (int p2 = p1 + 1; p2 <= holes; ++p2)
                s.add_clause(~mk_lit(x[p1][h]), ~mk_lit(x[p2][h]));
    s.set_conflict_budget(10);
    EXPECT_EQ(s.solve(), solve_result::unknown);
    EXPECT_TRUE(s.budget_exhausted());
    EXPECT_FALSE(s.interrupted());
    EXPECT_FALSE(s.paused());
}

// ---- gate encoder ----------------------------------------------------------------

TEST(gates, truth_tables) {
    // For every gate and input combination, force the inputs and check the
    // output via solving.
    for (int mask = 0; mask < 4; ++mask) {
        bool va = (mask & 1) != 0;
        bool vb = (mask & 2) != 0;
        solver s;
        gate_encoder g(s);
        lit a = g.fresh();
        lit b = g.fresh();
        lit and_o = g.and_gate(a, b);
        lit or_o = g.or_gate(a, b);
        lit xor_o = g.xor_gate(a, b);
        lit iff_o = g.iff_gate(a, b);
        s.add_clause(va ? a : ~a);
        s.add_clause(vb ? b : ~b);
        ASSERT_EQ(s.solve(), solve_result::sat);
        EXPECT_EQ(s.model_lit(and_o), va && vb);
        EXPECT_EQ(s.model_lit(or_o), va || vb);
        EXPECT_EQ(s.model_lit(xor_o), va != vb);
        EXPECT_EQ(s.model_lit(iff_o), va == vb);
    }
}

TEST(gates, ite_and_full_adder) {
    for (int mask = 0; mask < 8; ++mask) {
        bool vc = (mask & 1) != 0;
        bool vt = (mask & 2) != 0;
        bool ve = (mask & 4) != 0;
        solver s;
        gate_encoder g(s);
        lit c = g.fresh();
        lit t = g.fresh();
        lit e = g.fresh();
        lit ite_o = g.ite_gate(c, t, e);
        auto [sum, carry] = g.full_adder(c, t, e);
        s.add_clause(vc ? c : ~c);
        s.add_clause(vt ? t : ~t);
        s.add_clause(ve ? e : ~e);
        ASSERT_EQ(s.solve(), solve_result::sat);
        EXPECT_EQ(s.model_lit(ite_o), vc ? vt : ve);
        int total = int(vc) + int(vt) + int(ve);
        EXPECT_EQ(s.model_lit(sum), (total & 1) != 0);
        EXPECT_EQ(s.model_lit(carry), total >= 2);
    }
}

TEST(gates, constant_simplification) {
    solver s;
    gate_encoder g(s);
    lit a = g.fresh();
    EXPECT_EQ(g.and_gate(a, g.constant(false)), g.constant(false));
    EXPECT_EQ(g.and_gate(a, g.constant(true)), a);
    EXPECT_EQ(g.xor_gate(a, a), g.constant(false));
    EXPECT_EQ(g.xor_gate(a, ~a), g.constant(true));
    EXPECT_EQ(g.or_gate(a, ~a), g.constant(true));
    EXPECT_EQ(g.ite_gate(g.constant(true), a, ~a), a);
}


// ---- DIMACS -----------------------------------------------------------------------

TEST(dimacs, roundtrip_and_solve) {
    const char* text =
        "c tiny instance\n"
        "p cnf 3 3\n"
        "1 2 0\n"
        "-1 3 0\n"
        "-2 -3 0\n";
    solver s;
    EXPECT_EQ(read_dimacs(text, s), 3u);
    EXPECT_EQ(s.num_vars(), 3);
    EXPECT_EQ(s.solve(), solve_result::sat);
    // Model satisfies the original clauses.
    EXPECT_TRUE(s.model_lit(mk_lit(0)) || s.model_lit(mk_lit(1)));
    EXPECT_TRUE(!s.model_lit(mk_lit(0)) || s.model_lit(mk_lit(2)));
    EXPECT_TRUE(!s.model_lit(mk_lit(1)) || !s.model_lit(mk_lit(2)));
}

TEST(dimacs, unsat_instance) {
    solver s;
    read_dimacs("p cnf 1 2\n1 0\n-1 0\n", s);
    EXPECT_EQ(s.solve(), solve_result::unsat);
}

TEST(dimacs, malformed_inputs_throw) {
    solver s;
    EXPECT_THROW(read_dimacs("p cnf x 3\n", s), std::runtime_error);
    EXPECT_THROW(read_dimacs("1 2 3\n", s), std::runtime_error);  // missing 0
    EXPECT_THROW(read_dimacs("hello\n", s), std::runtime_error);
    EXPECT_THROW(read_dimacs("", s), std::runtime_error);
}

TEST(dimacs, write_format) {
    std::vector<clause_lits> clauses{{mk_lit(0), ~mk_lit(1)}, {mk_lit(2)}};
    std::ostringstream os;
    write_dimacs(os, 3, clauses);
    EXPECT_EQ(os.str(), "p cnf 3 2\n1 -2 0\n3 0\n");
    // Round trip.
    solver s;
    EXPECT_EQ(read_dimacs(os.str(), s), 2u);
    EXPECT_EQ(s.solve(), solve_result::sat);
}

// ---- options mid-incremental-session --------------------------------------------

TEST(solver_options, mid_session_retune_preserves_saved_phases) {
    // Regression: set_options is documented safe between solve() calls, but
    // used to re-seed every saved phase, wiping the phase-saving state of
    // an in-progress incremental session.
    solver s;
    std::vector<var> v;
    for (int i = 0; i < 8; ++i) v.push_back(s.new_var());

    // Unconstrained: the default phase decides everything false.
    ASSERT_EQ(s.solve(), solve_result::sat);
    for (var x : v) EXPECT_FALSE(s.model_bool(x));

    // Assumptions drive everything true; phase saving then reproduces that
    // in a plain solve.
    std::vector<lit> all_true;
    for (var x : v) all_true.push_back(mk_lit(x));
    ASSERT_EQ(s.solve(all_true), solve_result::sat);
    ASSERT_EQ(s.solve(), solve_result::sat);
    for (var x : v) EXPECT_TRUE(s.model_bool(x));

    // Mid-session retune (same initial-phase option): the saved phases —
    // and hence the model — must survive.
    solver_options retuned;
    retuned.var_decay = 0.9;
    retuned.restart_base = 42.0;
    retuned.random_seed = 7;
    s.set_options(retuned);
    ASSERT_EQ(s.solve(), solve_result::sat);
    for (var x : v) EXPECT_TRUE(s.model_bool(x)) << "saved phase clobbered by set_options";
}

TEST(solver_options, mid_session_retune_keeps_incremental_session_correct) {
    // Retune between solves of one incremental session, then keep adding
    // clauses and solving under assumptions: answers and failed-assumption
    // cores must stay exact.
    solver s;
    var a = s.new_var();
    var b = s.new_var();
    var c = s.new_var();
    s.add_clause(mk_lit(a), mk_lit(b), mk_lit(c));
    ASSERT_EQ(s.solve(), solve_result::sat);

    solver_options retuned;
    retuned.restart_base = 25.0;
    retuned.random_branch_freq = 0.1;
    retuned.random_seed = 3;
    s.set_options(retuned);

    s.add_clause(~mk_lit(a), mk_lit(b));
    s.add_clause(~mk_lit(b));
    EXPECT_EQ(s.solve({mk_lit(a)}), solve_result::unsat);
    // The failed-assumption core names the assumption (negated).
    ASSERT_EQ(s.conflict_core().size(), 1u);
    EXPECT_EQ(s.conflict_core()[0], ~mk_lit(a));
    EXPECT_EQ(s.solve({mk_lit(c)}), solve_result::sat);

    // Changing the initial-phase option still re-seeds phases, as the
    // portfolio's diversification needs.
    solver_options flipped;
    flipped.init_phase_true = true;
    s.set_options(flipped);
    ASSERT_EQ(s.solve(), solve_result::sat);
    EXPECT_TRUE(s.model_bool(c));
}

TEST(lookahead, probe_literal_reports_implications_and_restores_state) {
    solver s;
    var a = s.new_var();
    var b = s.new_var();
    var d = s.new_var();
    s.add_clause(~mk_lit(a), mk_lit(b));
    s.add_clause(~mk_lit(b), mk_lit(d));
    auto probe = s.probe_literal(mk_lit(a));
    EXPECT_FALSE(probe.conflict);
    EXPECT_EQ(probe.implied, 3u);  // a, b, d
    // State restored: the same probe repeats identically, and solving works.
    auto again = s.probe_literal(mk_lit(a));
    EXPECT_EQ(again.implied, 3u);
    EXPECT_EQ(s.solve(), solve_result::sat);
}

TEST(lookahead, probe_literal_detects_failed_literal) {
    solver s;
    var a = s.new_var();
    var b = s.new_var();
    s.add_clause(~mk_lit(a), mk_lit(b));
    s.add_clause(~mk_lit(a), ~mk_lit(b));
    auto probe = s.probe_literal(mk_lit(a));
    EXPECT_TRUE(probe.conflict);  // a implies b and ~b
    EXPECT_EQ(s.solve(), solve_result::sat);  // formula itself is fine (~a)
}

TEST(lookahead, occurrence_counts_over_problem_clauses) {
    solver s;
    var a = s.new_var();
    var b = s.new_var();
    var c = s.new_var();
    s.add_clause(mk_lit(a), mk_lit(b));
    s.add_clause(~mk_lit(a), mk_lit(c));
    auto counts = s.occurrence_counts();
    ASSERT_EQ(counts.size(), 3u);
    EXPECT_EQ(counts[static_cast<std::size_t>(a)], 2u);
    EXPECT_EQ(counts[static_cast<std::size_t>(b)], 1u);
    EXPECT_EQ(counts[static_cast<std::size_t>(c)], 1u);
}

}  // namespace
}  // namespace sciduction::sat
