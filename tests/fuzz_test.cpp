// Differential fuzz harness guarding the modernized CDCL core (clause
// arena, Glucose reduction, restart-boundary inprocessing). Three layers:
//
//   1. Seeded random-CNF differential rounds: every instance is decided by
//      the feature-off reference, then re-decided under {reduce-only,
//      inprocess-only, both} with aggressively tightened triggers and under
//      every strategy kind {single, portfolio, shard} through solve_cnf —
//      verdicts must agree and every sat model must satisfy the ORIGINAL
//      clauses (eliminated variables reconstructed).
//   2. Bitwise regression pins: with the features off, the search is
//      bit-identical to the pre-PR solver on the PR-3 pigeonhole harness
//      (conflicts / decisions / propagations / digest pinned to captured
//      values), and `clause_digest` is unchanged by inprocessing.
//   3. Composition pins: BVE model reconstruction through the query_cache
//      re-validation path and the DIMACS solve_cnf_file path, and the
//      deterministic portfolio/shard disciplines staying bit-identical
//      across {1,4} threads with the new features enabled.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "cnf_fuzz.hpp"
#include "sat/dimacs.hpp"
#include "sat/pigeonhole.hpp"
#include "sat/solver.hpp"
#include "substrate/portfolio.hpp"
#include "substrate/query_cache.hpp"
#include "substrate/solve_request.hpp"
#include "substrate/thread_pool.hpp"

namespace sciduction {
namespace {

using substrate::answer;
using substrate::cnf_outcome;
using substrate::solve_cnf;
using substrate::strategy;
using test::fuzz_cnf;
using test::generate_cnf;

/// Feature knobs tightened so reduction and inprocessing fire many times
/// even on the harness's small instances (the default triggers are tuned
/// for real workloads and would never trip below ~2000 conflicts).
sat::solver_options aggressive(bool reduce, bool inprocess) {
    sat::solver_options o;
    o.reduce_learnts = reduce;
    o.reduce_first = 50;
    o.reduce_inc = 20;
    o.inprocess = inprocess;
    o.inprocess_interval = 60;
    o.inprocess_vivify = inprocess;  // default-off knob: force coverage here
    return o;
}

sat::solve_result reference_solve(const fuzz_cnf& cnf) {
    sat::solver s;
    cnf.load_into(s);
    return s.solve();
}

// ---- layer 1: seeded differential rounds ------------------------------------

TEST(fuzz_differential, feature_modes_agree_with_reference_and_models_hold) {
    int sat_rounds = 0;
    int unsat_rounds = 0;
    for (std::uint64_t seed = 1; seed <= 80; ++seed) {
        const fuzz_cnf cnf = generate_cnf(seed);
        const sat::solve_result want = reference_solve(cnf);
        (want == sat::solve_result::sat ? sat_rounds : unsat_rounds)++;
        for (int mode = 1; mode < 4; ++mode) {
            sat::solver s;
            s.set_options(aggressive((mode & 1) != 0, (mode & 2) != 0));
            cnf.load_into(s);
            const sat::solve_result got = s.solve();
            ASSERT_EQ(got, want) << "seed=" << seed << " mode=" << mode;
            if (got == sat::solve_result::sat) {
                ASSERT_TRUE(cnf.satisfied_by(s)) << "seed=" << seed << " mode=" << mode;
            }
        }
    }
    // The generator must exercise both verdicts, or the harness tests nothing.
    EXPECT_GT(sat_rounds, 10);
    EXPECT_GT(unsat_rounds, 10);
}

TEST(fuzz_differential, assumption_solves_agree_through_eliminated_variables) {
    // Underconstrained instances eliminate many variables; assuming over
    // them afterwards must transparently restore the original clauses
    // (solver::restore_eliminated) and still agree with the reference.
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        const fuzz_cnf cnf = generate_cnf(seed * 5 + 2);  // family mix, any shape works
        util::rng r;
        r.reseed(seed);
        std::vector<sat::lit> assumptions;
        for (int k = 0; k < 3; ++k)
            assumptions.push_back(
                sat::mk_lit(static_cast<sat::var>(
                                r.next_below(static_cast<std::uint64_t>(cnf.num_vars))),
                            r.next_below(2) == 1));
        sat::solver ref;
        cnf.load_into(ref);
        ASSERT_NE(ref.solve(), sat::solve_result::unknown);
        const sat::solve_result want = ref.solve(assumptions);

        sat::solver s;
        s.set_options(aggressive(true, true));
        cnf.load_into(s);
        s.solve();  // first solve: let elimination happen
        const sat::solve_result got = s.solve(assumptions);
        ASSERT_EQ(got, want) << "seed=" << seed;
        if (got == sat::solve_result::sat) {
            for (sat::lit a : assumptions)
                EXPECT_TRUE(s.model_lit(a)) << "seed=" << seed;
            EXPECT_TRUE(cnf.satisfied_by(s)) << "seed=" << seed;
        }
    }
}

TEST(fuzz_differential, strategies_agree_across_feature_sets) {
    // The strategy-layer cross-check: {off, reduce, inprocess+reduce} x
    // {single, portfolio, shard} through solve_cnf, all agreeing with the
    // feature-off reference and models holding on the original clauses.
    const sat::solver_features feature_sets[] = {
        {},                                  // off: the pre-PR configuration
        {.reduce = true},                    // reduce-only
        {.reduce = true, .inprocess = true}  // everything on
    };
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        const fuzz_cnf cnf = generate_cnf(seed);
        const sat::solve_result want = reference_solve(cnf);
        const answer expect =
            want == sat::solve_result::sat ? answer::sat : answer::unsat;
        auto build = [&cnf](unsigned, sat::solver& s) { cnf.load_into(s); };
        for (const sat::solver_features& f : feature_sets) {
            for (strategy st :
                 {strategy::single(), strategy::portfolio(3), strategy::shard(2)}) {
                st.features = f;
                cnf_outcome out = solve_cnf(build, st, 2);
                ASSERT_EQ(out.result.ans, expect)
                    << "seed=" << seed << " strategy=" << to_string(st.kind)
                    << " reduce=" << f.reduce << " inprocess=" << f.inprocess;
                if (out.result.is_sat()) {
                    // Evaluate the returned model on the original clauses.
                    const auto& model = out.result.sat_model;
                    for (const sat::clause_lits& c : cnf.clauses) {
                        bool sat = false;
                        for (sat::lit l : c) {
                            const auto v = static_cast<std::size_t>(sat::var_of(l));
                            if (v >= model.size()) continue;
                            if (model[v] == sat::lbool::l_undef) {
                                sat = true;  // unconstrained: either phase completes
                                break;
                            }
                            sat = sat || (model[v] == sat::lbool::l_true) != sat::sign_of(l);
                        }
                        ASSERT_TRUE(sat) << "seed=" << seed << " strategy="
                                         << to_string(st.kind);
                    }
                }
            }
        }
    }
}

// ---- layer 2: bitwise regression pins ---------------------------------------

struct pinned_run {
    int holes;
    std::uint64_t conflicts, decisions, propagations, restarts;
    std::uint64_t learnt_literals, minimized, deleted;
    std::uint64_t lbd_sum_tracked;  // with track_lbd on (PR-3 harness shape)
    std::uint64_t digest_lo, digest_hi, digest_clauses;
};

// Captured from the pre-PR solver (commit 11bfce7) on the PR-3 pigeonhole
// harness instances: the default-off configuration must reproduce every
// number bit for bit — any drift means the arena/watch rewrite changed the
// search, not just the data layout.
constexpr pinned_run pinned_runs[] = {
    {5, 150, 190, 1792, 1, 1029, 208, 0, 712,
     16942381021301478810ULL, 3825674198797292963ULL, 81},
    {6, 788, 926, 10415, 5, 8626, 1563, 0, 5623,
     16033485310376732690ULL, 14954085054079204251ULL, 133},
    {7, 5864, 7125, 83723, 29, 92280, 17824, 4811, 65065,
     13972939599297921053ULL, 15980772396125061237ULL, 204},
};

TEST(bitwise_pins, features_off_search_is_bit_identical_to_pre_pr_solver) {
    for (const pinned_run& pin : pinned_runs) {
        sat::solver s;
        sat::encode_pigeonhole(s, pin.holes);
        ASSERT_EQ(s.solve(), sat::solve_result::unsat) << "php" << pin.holes;
        const sat::solver_stats& st = s.stats();
        EXPECT_EQ(st.conflicts, pin.conflicts) << "php" << pin.holes;
        EXPECT_EQ(st.decisions, pin.decisions) << "php" << pin.holes;
        EXPECT_EQ(st.propagations, pin.propagations) << "php" << pin.holes;
        EXPECT_EQ(st.restarts, pin.restarts) << "php" << pin.holes;
        EXPECT_EQ(st.learnt_literals, pin.learnt_literals) << "php" << pin.holes;
        EXPECT_EQ(st.minimized_literals, pin.minimized) << "php" << pin.holes;
        EXPECT_EQ(st.deleted_clauses, pin.deleted) << "php" << pin.holes;
        const sat::clause_digest d = s.digest();
        EXPECT_EQ(d.lo, pin.digest_lo) << "php" << pin.holes;
        EXPECT_EQ(d.hi, pin.digest_hi) << "php" << pin.holes;
        EXPECT_EQ(d.clauses, pin.digest_clauses) << "php" << pin.holes;
        // No new-feature machinery may have run in the default configuration.
        EXPECT_EQ(st.reduces, 0u);
        EXPECT_EQ(st.inprocessings, 0u);
        EXPECT_EQ(st.eliminated_vars, 0u);
        EXPECT_EQ(st.vivified_literals, 0u);
    }
}

TEST(bitwise_pins, lbd_tracking_unchanged_by_the_arena_rewrite) {
    for (const pinned_run& pin : pinned_runs) {
        sat::solver s;
        sat::solver_options o;
        o.track_lbd = true;
        s.set_options(o);
        sat::encode_pigeonhole(s, pin.holes);
        ASSERT_EQ(s.solve(), sat::solve_result::unsat) << "php" << pin.holes;
        EXPECT_EQ(s.stats().lbd_sum, pin.lbd_sum_tracked) << "php" << pin.holes;
        EXPECT_EQ(s.stats().conflicts, pin.conflicts) << "php" << pin.holes;
    }
}

TEST(bitwise_pins, clause_digest_unchanged_by_inprocessing) {
    // The digest fingerprints the input clause stream, taken at add_clause
    // time — simplification afterwards (subsumption, BVE, vivification)
    // must not perturb it.
    for (std::uint64_t seed : {3ULL, 6ULL, 9ULL}) {
        const fuzz_cnf cnf = generate_cnf(seed);
        sat::solver off;
        cnf.load_into(off);
        off.solve();
        sat::solver on;
        on.set_options(aggressive(true, true));
        cnf.load_into(on);
        on.solve();
        EXPECT_EQ(on.digest(), off.digest()) << "seed=" << seed;
    }
}

// ---- layer 3: composition pins ----------------------------------------------

TEST(bve_reconstruction, models_survive_the_query_cache_revalidation_path) {
    // The CNF cache re-validates a cached sat model on a freshly built
    // prototype by assuming every model literal — if BVE reconstruction
    // left an eliminated variable wrong, the propagation refutes it and
    // this hits the fallback solve instead of a cache hit.
    substrate::query_cache cache{std::string{}};
    // Seed 13 (mixed-width family) is sat and eliminates 14 variables
    // under inprocessing — a real reconstruction workload.
    const fuzz_cnf cnf = generate_cnf(13);
    ASSERT_EQ(reference_solve(cnf), sat::solve_result::sat) << "pick a sat seed";
    auto build = [&cnf](unsigned, sat::solver& s) { cnf.load_into(s); };
    strategy st = strategy::single();
    st.features = sat::solver_features{.reduce = true, .inprocess = true};
    cnf_outcome first = solve_cnf(build, st, 1, {}, &cache);
    ASSERT_EQ(first.result.ans, answer::sat);
    EXPECT_FALSE(first.cache_hit);
    cnf_outcome second = solve_cnf(build, st, 1, {}, &cache);
    ASSERT_EQ(second.result.ans, answer::sat);
    EXPECT_TRUE(second.cache_hit) << "reconstructed model failed re-validation";
}

TEST(bve_reconstruction, models_survive_the_dimacs_file_path) {
    // End to end through solve_cnf_file: write a sat instance out as
    // DIMACS, decide it with the features on, and evaluate the returned
    // model against the parsed clauses.
    const fuzz_cnf cnf = generate_cnf(13);  // sat, 14 variables eliminated
    const std::string path = ::testing::TempDir() + "fuzz_bve_reconstruction.cnf";
    {
        std::ofstream out(path);
        out << "p cnf " << cnf.num_vars << ' ' << cnf.clauses.size() << "\n";
        for (const sat::clause_lits& c : cnf.clauses) {
            for (sat::lit l : c)
                out << (sat::sign_of(l) ? -(sat::var_of(l) + 1) : sat::var_of(l) + 1) << ' ';
            out << "0\n";
        }
    }
    strategy st = strategy::single();
    st.features = sat::solver_features{.reduce = true, .inprocess = true};
    cnf_outcome out = substrate::solve_cnf_file(path, st, 1);
    std::remove(path.c_str());
    ASSERT_EQ(out.result.ans, answer::sat);
    const auto& model = out.result.sat_model;
    for (const sat::clause_lits& c : cnf.clauses) {
        bool sat = false;
        for (sat::lit l : c) {
            const auto v = static_cast<std::size_t>(sat::var_of(l));
            if (v >= model.size() || model[v] == sat::lbool::l_undef) {
                sat = true;
                break;
            }
            sat = sat || (model[v] == sat::lbool::l_true) != sat::sign_of(l);
        }
        ASSERT_TRUE(sat);
    }
}

std::unique_ptr<substrate::sat_backend> featured_member(unsigned member, int holes) {
    auto b = std::make_unique<substrate::sat_backend>(
        sat::apply_features(substrate::diversified_options(member),
                            {.reduce = true, .inprocess = true}),
        "fuzz#" + std::to_string(member));
    sat::encode_pigeonhole(b->solver(), holes);
    return b;
}

TEST(feature_determinism, portfolio_bit_identical_across_thread_counts) {
    // Inprocessing triggers on conflict counts at restart boundaries, so
    // the deterministic portfolio discipline must stay bit-identical
    // across {1,4} threads with the features enabled.
    auto run = [](unsigned threads) {
        substrate::portfolio_config cfg;
        cfg.members = 4;
        cfg.sharing.enabled = true;
        cfg.sharing.deterministic = true;
        cfg.sharing.slice_conflicts = 300;
        substrate::thread_pool pool(threads);
        return substrate::race([](unsigned m) { return featured_member(m, 7); }, cfg, pool);
    };
    substrate::portfolio_outcome one = run(1);
    substrate::portfolio_outcome four = run(4);
    EXPECT_EQ(one.result.ans, answer::unsat);
    EXPECT_EQ(four.result.ans, answer::unsat);
    EXPECT_EQ(one.winner, four.winner);
    EXPECT_EQ(one.rounds, four.rounds);
    EXPECT_EQ(one.total_conflicts, four.total_conflicts);
    EXPECT_TRUE(one.sharing == four.sharing);
}

TEST(feature_determinism, shard_identical_across_thread_counts) {
    auto build = [](unsigned, sat::solver& s) { sat::encode_pigeonhole(s, 7); };
    auto run = [&](unsigned threads) {
        strategy st = strategy::shard(2);
        st.features = sat::solver_features{.reduce = true, .inprocess = true};
        substrate::sharing_config share;
        share.enabled = true;
        share.deterministic = true;
        st.sharing = share;
        return solve_cnf(build, st, threads);
    };
    cnf_outcome one = run(1);
    cnf_outcome four = run(4);
    EXPECT_EQ(one.result.ans, answer::unsat);
    EXPECT_EQ(four.result.ans, answer::unsat);
    EXPECT_EQ(one.total_conflicts, four.total_conflicts);
    EXPECT_EQ(one.shard.refuted, four.shard.refuted);
    EXPECT_EQ(one.shard.pruned, four.shard.pruned);
    EXPECT_TRUE(one.sharing == four.sharing);
}

TEST(feature_composition, exchange_import_bit_survives_reduction) {
    // Imported clauses carry their bit through Glucose reduction: run the
    // deterministic sharing portfolio with reduction forced on and verify
    // the exchange still both exports and imports (a dropped bit would
    // either crash the accounting or silently stop the exchange).
    substrate::portfolio_config cfg;
    cfg.members = 4;
    cfg.sequential = true;
    cfg.sharing.enabled = true;
    cfg.sharing.slice_conflicts = 400;
    cfg.sharing.max_clause_size = 32;
    cfg.sharing.max_lbd = 32;
    substrate::portfolio_outcome out = substrate::race(
        [](unsigned m) {
            auto b = std::make_unique<substrate::sat_backend>(
                sat::apply_features(substrate::diversified_options(m), {.reduce = true}),
                "xchg#" + std::to_string(m));
            // Reduce aggressively so learnt DB churn overlaps the exchange.
            sat::solver_options o = b->solver().options();
            o.reduce_first = 100;
            o.reduce_inc = 50;
            b->solver().set_options(o);
            sat::encode_pigeonhole(b->solver(), 7);
            return b;
        },
        cfg);
    EXPECT_EQ(out.result.ans, answer::unsat);
    EXPECT_GT(out.sharing.imported, 0u);
    EXPECT_GT(out.sharing.exported, 0u);
}

}  // namespace
}  // namespace sciduction
