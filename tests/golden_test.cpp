/// \file
/// The checked-in scenario corpus, solved in-process: every corpus/*.cnf
/// and corpus/*.smt2 file must reproduce the verdict pinned in its
/// `.expected` golden (the same goldens tools/run_corpus.py diffs the CLI
/// driver against), every sat model must evaluate to true on the original
/// problem, and the verdict must not depend on the strategy. The corpus
/// also feeds the write/read round-trip check, so the DIMACS exporter is
/// exercised on real instances rather than toys.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "frontend/smtlib2.hpp"
#include "sat/dimacs.hpp"
#include "substrate/engine.hpp"

namespace sciduction {
namespace {

namespace fs = std::filesystem;

struct scenario {
    fs::path path;
    substrate::answer expected;  ///< verdict pinned by the .expected golden
};

// Reads the verdict from a scenario's golden file ("s SATISFIABLE" /
// "s UNSATISFIABLE" first line).
substrate::answer expected_verdict(const fs::path& scenario_path) {
    std::ifstream in(scenario_path.string() + ".expected");
    EXPECT_TRUE(in.good()) << "missing golden for " << scenario_path
                           << " (run tools/run_corpus.py --regen)";
    std::string line;
    std::getline(in, line);
    if (line == "s SATISFIABLE") return substrate::answer::sat;
    if (line == "s UNSATISFIABLE") return substrate::answer::unsat;
    ADD_FAILURE() << "unrecognized golden verdict '" << line << "' for " << scenario_path;
    return substrate::answer::unknown;
}

std::vector<scenario> corpus(const std::string& extension) {
    std::vector<scenario> out;
    for (const fs::directory_entry& entry : fs::directory_iterator(SCIDUCTION_CORPUS_DIR))
        if (entry.path().extension() == extension)
            out.push_back({entry.path(), expected_verdict(entry.path())});
    std::sort(out.begin(), out.end(),
              [](const scenario& a, const scenario& b) { return a.path < b.path; });
    return out;
}

// A CNF model satisfies a clause when some literal is not assigned false
// (undef means the variable was unconstrained).
void expect_model_satisfies(const sat::dimacs_problem& p, const std::vector<sat::lbool>& model,
                            const fs::path& path) {
    ASSERT_GE(model.size(), static_cast<std::size_t>(p.num_vars)) << path;
    for (const sat::clause_lits& cl : p.clauses) {
        bool satisfied = false;
        for (sat::lit l : cl) {
            sat::lbool v = model[var_of(l)];
            if (v == sat::lbool::l_undef || (v == sat::lbool::l_true) != sign_of(l))
                satisfied = true;
        }
        EXPECT_TRUE(satisfied) << "model falsifies a clause of " << path;
    }
}

// ---- DIMACS scenarios -----------------------------------------------------------

TEST(golden_corpus, cnf_scenarios_match_their_goldens) {
    std::vector<scenario> scenarios = corpus(".cnf");
    EXPECT_GE(scenarios.size(), 10u) << "corpus shrank?";
    for (const scenario& sc : scenarios) {
        SCOPED_TRACE(sc.path.string());
        substrate::cnf_outcome out = substrate::solve_cnf_file(sc.path.string());
        EXPECT_EQ(out.result.status, substrate::solve_status::ok) << out.result.status_detail;
        EXPECT_EQ(out.result.ans, sc.expected);
        if (out.result.ans == substrate::answer::sat) {
            std::ifstream in(sc.path);
            expect_model_satisfies(sat::read_dimacs(in), out.result.sat_model, sc.path);
        }
    }
}

TEST(golden_corpus, cnf_verdicts_identical_across_strategies) {
    const substrate::strategy strategies[] = {substrate::strategy::single(),
                                              substrate::strategy::portfolio(3),
                                              substrate::strategy::shard(2)};
    for (const scenario& sc : corpus(".cnf")) {
        SCOPED_TRACE(sc.path.string());
        for (const auto& strat : strategies) {
            substrate::cnf_outcome out = substrate::solve_cnf_file(sc.path.string(), strat, 2);
            EXPECT_EQ(out.result.ans, sc.expected) << to_string(out.executed);
            if (out.result.ans == substrate::answer::sat) {
                std::ifstream in(sc.path);
                expect_model_satisfies(sat::read_dimacs(in), out.result.sat_model, sc.path);
            }
        }
    }
}

TEST(golden_corpus, cnf_scenarios_round_trip_through_write_dimacs) {
    for (const scenario& sc : corpus(".cnf")) {
        SCOPED_TRACE(sc.path.string());
        std::ifstream in(sc.path);
        sat::dimacs_problem original = sat::read_dimacs(in);
        std::ostringstream os;
        sat::write_dimacs(os, original);
        sat::dimacs_problem reread = sat::read_dimacs(os.str());
        EXPECT_EQ(reread.num_vars, original.num_vars);
        EXPECT_EQ(reread.clauses, original.clauses);
    }
}

// ---- SMT-LIB2 scenarios ---------------------------------------------------------

TEST(golden_corpus, smt2_scenarios_match_their_goldens) {
    std::vector<scenario> scenarios = corpus(".smt2");
    EXPECT_GE(scenarios.size(), 10u) << "corpus shrank?";
    for (const scenario& sc : scenarios) {
        SCOPED_TRACE(sc.path.string());
        smt::term_manager tm;
        frontend::script script = frontend::parse_script_file(sc.path.string(), tm);
        EXPECT_TRUE(script.check_sat);
        // The :status annotation, the golden, and the solver must agree.
        ASSERT_TRUE(script.expected_status.has_value()) << "corpus scripts carry :status";
        EXPECT_EQ(*script.expected_status,
                  sc.expected == substrate::answer::sat ? "sat" : "unsat");

        substrate::smt_engine engine(tm);
        substrate::backend_result r =
            engine.solve({script.assertions, {}, substrate::strategy::single()});
        EXPECT_EQ(r.status, substrate::solve_status::ok) << r.status_detail;
        EXPECT_EQ(r.ans, sc.expected);
        if (r.ans == substrate::answer::sat) {
            substrate::model_evaluator ev(tm, r.model);
            for (const smt::term& t : script.assertions)
                EXPECT_EQ(ev.value(t), 1u) << "model falsifies an assertion of " << sc.path;
        }
    }
}

TEST(golden_corpus, smt2_verdicts_identical_across_strategies) {
    const substrate::strategy strategies[] = {substrate::strategy::portfolio(3),
                                              substrate::strategy::shard(2)};
    for (const scenario& sc : corpus(".smt2")) {
        SCOPED_TRACE(sc.path.string());
        smt::term_manager tm;
        frontend::script script = frontend::parse_script_file(sc.path.string(), tm);
        substrate::engine_config cfg;
        cfg.threads = 2;
        substrate::smt_engine engine(tm, cfg);
        for (const auto& strat : strategies) {
            substrate::backend_result r = engine.solve({script.assertions, {}, strat});
            EXPECT_EQ(r.ans, sc.expected);
            if (r.ans == substrate::answer::sat) {
                substrate::model_evaluator ev(tm, r.model);
                for (const smt::term& t : script.assertions) EXPECT_EQ(ev.value(t), 1u);
            }
        }
    }
}

}  // namespace
}  // namespace sciduction
