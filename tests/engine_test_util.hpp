/// \file
/// Shared helpers for tests exercising the engine through the v2 request
/// surface. They express the legacy call shapes (engine-default portfolio
/// check, batch of single-strategy solves, cube-and-conquer with a stats
/// out-param, future-returning async check) over smt_engine::solve /
/// smt_engine::submit, so the per-test expectations about counters and
/// strategies stay explicit at the call sites.
#pragma once

#include "substrate/engine.hpp"

namespace sciduction::substrate {

/// Synchronous solve with the engine-default portfolio strategy — the
/// legacy `check` shape. Runs inline on the calling thread.
inline backend_result solve_portfolio(smt_engine& engine, std::vector<smt::term> assertions,
                                      std::vector<smt::term> assumptions = {}) {
    return engine.solve({std::move(assertions), std::move(assumptions), strategy::portfolio()});
}

/// Submit-many with strategy::single() then await-all, results in query
/// order — the legacy `check_batch` contract.
inline std::vector<backend_result> solve_batch(smt_engine& engine,
                                               const std::vector<smt_query>& queries) {
    std::vector<query_handle> handles;
    handles.reserve(queries.size());
    for (const smt_query& q : queries)
        handles.push_back(engine.submit({q.assertions, q.assumptions, strategy::single()}));
    std::vector<backend_result> results;
    results.reserve(handles.size());
    for (query_handle& h : handles) results.push_back(h.get());
    return results;
}

/// Solve with strategy::shard() (engine-default depth; depth 0 degrades to
/// the portfolio resolution), optionally reporting the shard work
/// breakdown — the legacy `check_sharded` shape.
inline backend_result solve_sharded(smt_engine& engine, std::vector<smt::term> assertions,
                                    shard_stats* stats = nullptr) {
    query_handle handle = engine.submit({std::move(assertions), {}, strategy::shard()});
    backend_result result = handle.get();
    if (stats != nullptr) *stats = handle.stats().shard;
    return result;
}

/// Submit with the engine-default portfolio strategy and return the shared
/// future — the legacy `check_async` shape.
inline std::shared_future<backend_result> submit_portfolio(smt_engine& engine,
                                                           std::vector<smt::term> assertions) {
    return engine.submit({std::move(assertions), {}, strategy::portfolio()}).share();
}

}  // namespace sciduction::substrate
