#include <gtest/gtest.h>

#include "ogis/benchmarks.hpp"
#include "util/rng.hpp"

namespace sciduction::ogis {
namespace {

// ---- components: symbolic and concrete semantics agree -------------------------

class component_agreement : public ::testing::TestWithParam<int> {
protected:
    static std::vector<component> library() {
        return {comp_add(),         comp_sub(),          comp_mul(),        comp_and(),
                comp_or(),          comp_xor(),          comp_not(),        comp_neg(),
                comp_shl_const(3),  comp_lshr_const(2),  comp_add_const(9), comp_const(42),
                comp_ule(),         comp_ite()};
    }
};

TEST_P(component_agreement, concrete_matches_symbolic) {
    const unsigned width = 16;
    util::rng r(static_cast<std::uint64_t>(GetParam()));
    for (const component& c : library()) {
        for (int t = 0; t < 10; ++t) {
            std::vector<std::uint64_t> args;
            for (unsigned i = 0; i < c.arity; ++i)
                args.push_back(r.next_u64() & smt::term_manager::mask(width));
            std::uint64_t concrete = c.concrete(args, width) & smt::term_manager::mask(width);

            smt::term_manager tm;
            std::vector<smt::term> arg_terms;
            smt::env e;
            for (unsigned i = 0; i < c.arity; ++i) {
                smt::term v = tm.mk_bv_var("a" + std::to_string(i), width);
                arg_terms.push_back(v);
                e[v.id] = args[i];
            }
            smt::term sym = c.symbolic(tm, arg_terms, width);
            EXPECT_EQ(tm.evaluate(sym, e), concrete) << c.name << " trial " << t;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, component_agreement, ::testing::Values(1, 2, 3));

// ---- lf_program -----------------------------------------------------------------

TEST(lf_program, eval_and_print) {
    std::vector<component> lib{comp_shl_const(2), comp_add()};
    lf_program prog;
    prog.width = 32;
    prog.num_inputs = 1;
    prog.lines = {{0, {0}}, {1, {1, 0}}};  // v1 = v0 << 2; v2 = v1 + v0  (5x)
    prog.outputs = {2};
    EXPECT_EQ(prog.eval(lib, {7})[0], 35u);
    std::string s = prog.to_string(lib);
    EXPECT_NE(s.find("shl2"), std::string::npos);
    EXPECT_NE(s.find("add"), std::string::npos);
    EXPECT_NE(s.find("return (v2)"), std::string::npos);
}

TEST(lf_program, symbolic_matches_concrete) {
    std::vector<component> lib{comp_xor(), comp_and(), comp_add()};
    lf_program prog;
    prog.width = 8;
    prog.num_inputs = 2;
    prog.lines = {{0, {0, 1}}, {1, {0, 2}}, {2, {2, 3}}};
    prog.outputs = {4};
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 8);
    smt::term y = tm.mk_bv_var("y", 8);
    auto sym = prog.eval_symbolic(lib, tm, {x, y});
    util::rng r(4);
    for (int t = 0; t < 64; ++t) {
        std::uint64_t vx = r.next_below(256);
        std::uint64_t vy = r.next_below(256);
        smt::env e{{x.id, vx}, {y.id, vy}};
        EXPECT_EQ(tm.evaluate(sym[0], e), prog.eval(lib, {vx, vy})[0]);
    }
}

// ---- the oracle adapters ---------------------------------------------------------

TEST(minic_oracle, return_value_and_globals) {
    minic_oracle ret_oracle(ir::parse_program("int f(int x) { return x * 3; }"), "f");
    EXPECT_EQ(ret_oracle.query({5}), (io_vector{15}));
    minic_oracle glob_oracle(
        ir::parse_program("int a = 0; int b = 0; int f(int x) { a = x + 1; b = x - 1; return 0; }"),
        "f", {"a", "b"});
    EXPECT_EQ(glob_oracle.query({10}), (io_vector{11, 9}));
    EXPECT_EQ(glob_oracle.queries(), 1u);
}

TEST(benchmarks, oracles_implement_reference_semantics) {
    util::rng r(12);
    for (const auto& bench : all_benchmarks()) {
        minic_oracle oracle(ir::parse_program(bench.obfuscated_source), bench.function_name,
                            bench.output_globals);
        for (int t = 0; t < 100; ++t) {
            io_vector in;
            for (unsigned i = 0; i < bench.config.num_inputs; ++i)
                in.push_back(r.next_u64() & 0xffffffffULL);
            io_vector want = bench.reference(in);
            for (auto& v : want) v &= smt::term_manager::mask(32);
            ASSERT_EQ(oracle.query(in), want) << bench.name << " trial " << t;
        }
    }
}

// ---- synthesis (small widths keep the suite fast) --------------------------------

synthesis_outcome run_at_width(deobfuscation_benchmark bench, unsigned width) {
    bench.config.width = width;
    return run_benchmark(bench);
}

void expect_correct(const deobfuscation_benchmark& bench, const synthesis_outcome& out,
                    unsigned width) {
    ASSERT_EQ(out.status, core::loop_status::success) << bench.name;
    ASSERT_TRUE(out.program.has_value());
    util::rng r(55);
    for (int t = 0; t < 300; ++t) {
        io_vector in;
        for (unsigned i = 0; i < bench.config.num_inputs; ++i)
            in.push_back(r.next_u64() & smt::term_manager::mask(width));
        io_vector want = bench.reference(in);
        for (auto& v : want) v &= smt::term_manager::mask(width);
        ASSERT_EQ(out.program->eval(bench.config.library, in), want)
            << bench.name << " on input " << in[0];
    }
}

TEST(synthesis, p1_interchange) {
    auto bench = benchmark_p1_interchange();
    auto out = run_at_width(bench, 8);
    expect_correct(bench, out, 8);
    EXPECT_EQ(out.program->lines.size(), 3u);  // exactly the three xors
}

TEST(synthesis, p2_multiply45) {
    auto bench = benchmark_p2_multiply45();
    auto out = run_at_width(bench, 8);
    expect_correct(bench, out, 8);
    EXPECT_EQ(out.program->lines.size(), 4u);
}

TEST(synthesis, bit_tricks) {
    for (auto bench : {benchmark_rightmost_off(), benchmark_isolate_rightmost(),
                       benchmark_average()}) {
        auto out = run_at_width(bench, 8);
        expect_correct(bench, out, 8);
    }
}

TEST(synthesis, stats_populated) {
    auto out = run_at_width(benchmark_isolate_rightmost(), 8);
    ASSERT_EQ(out.status, core::loop_status::success);
    EXPECT_GE(out.stats.iterations, 1);
    EXPECT_GE(out.stats.oracle_queries, 2u);  // the seeds
    EXPECT_GE(out.stats.synthesis_queries, 1);
    EXPECT_GE(out.stats.distinguish_queries, 1);
    EXPECT_GT(out.stats.elapsed_seconds, 0.0);
    EXPECT_NE(out.report.hypothesis.name.find("component library"), std::string::npos);
}

// ---- Fig. 7: guarantees under an invalid structure hypothesis --------------------

TEST(guarantees_fig7, insufficient_library_reports_unrealizable) {
    // x*45 cannot be built from a single XOR (the only candidate semantics
    // over one input are x and 0): the I/O pairs become inconsistent with
    // every candidate, so infeasibility is reported — the left branch of
    // the paper's Fig. 7 flowchart.
    auto bench = benchmark_p2_multiply45();
    bench.config.width = 8;
    bench.config.library = {comp_xor()};
    bench.config.max_iterations = 16;
    auto out = run_benchmark(bench);
    EXPECT_EQ(out.status, core::loop_status::unrealizable);
}

TEST(guarantees_fig7, sufficient_library_yields_correct_program) {
    // The other branch of the paper's Fig. 7 flowchart.
    auto bench = benchmark_isolate_rightmost();
    bench.config.width = 8;
    auto out = run_benchmark(bench);
    expect_correct(bench, out, 8);
}

TEST(guarantees_fig7, unique_candidate_terminates_first_iteration) {
    // With a library admitting a single semantics, the distinguisher proves
    // uniqueness immediately.
    auto bench = benchmark_isolate_rightmost();
    bench.config.width = 8;
    auto out = run_benchmark(bench);
    ASSERT_EQ(out.status, core::loop_status::success);
    EXPECT_LE(out.stats.iterations, 4);
}

// Synthesis succeeds across widths (the artifact is width-generic).
class width_sweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(width_sweep, p1_synthesizes) {
    auto bench = benchmark_p1_interchange();
    auto out = run_at_width(bench, GetParam());
    expect_correct(bench, out, GetParam());
}

INSTANTIATE_TEST_SUITE_P(widths, width_sweep, ::testing::Values(4u, 8u, 16u));

}  // namespace
}  // namespace sciduction::ogis
