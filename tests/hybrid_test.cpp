#include <gtest/gtest.h>

#include <cmath>

#include "hybrid/transmission.hpp"
#include "util/rng.hpp"

namespace sciduction::hybrid {
namespace {

// ---- box ------------------------------------------------------------------------

TEST(box_type, membership_and_emptiness) {
    box b;
    b.lo = {0.0, -1.0};
    b.hi = {2.0, 1.0};
    EXPECT_TRUE(b.contains({1.0, 0.0}));
    EXPECT_TRUE(b.contains({0.0, -1.0}));  // closed bounds
    EXPECT_FALSE(b.contains({2.1, 0.0}));
    EXPECT_FALSE(b.empty());
    EXPECT_TRUE(box::empty_box(2).empty());
    EXPECT_FALSE(box::empty_box(2).contains({0.5, 0.5}));
    EXPECT_TRUE(box::whole(2).contains({1e9, -1e9}));
}

// ---- RK4 ------------------------------------------------------------------------

TEST(rk4, exponential_decay_accuracy) {
    // dx/dt = -x, x(0) = 1: x(t) = e^-t.
    vector_field f = [](const state& x, state& dx) { dx[0] = -x[0]; };
    state x{1.0};
    const double dt = 1e-3;
    for (int i = 0; i < 1000; ++i) rk4_step(f, x, dt);
    EXPECT_NEAR(x[0], std::exp(-1.0), 1e-9);
}

TEST(rk4, harmonic_oscillator_energy) {
    // x'' = -x as a 2D system; energy must be conserved to RK4 accuracy.
    vector_field f = [](const state& x, state& dx) {
        dx[0] = x[1];
        dx[1] = -x[0];
    };
    state x{1.0, 0.0};
    for (int i = 0; i < 10000; ++i) rk4_step(f, x, 1e-3);
    EXPECT_NEAR(x[0] * x[0] + x[1] * x[1], 1.0, 1e-8);
}

// ---- simulate_in_mode --------------------------------------------------------------

mds ramp_system(double lo_exit, double hi_exit, double unsafe_above) {
    // One mode with dx/dt = 1 on a line; one exit with guard [lo,hi];
    // unsafe above a threshold.
    mds m;
    m.dim = 1;
    m.modes.push_back({"ramp", [](const state&, state& dx) { dx[0] = 1.0; }});
    m.modes.push_back({"done", [](const state&, state& dx) { dx[0] = 0.0; }});
    box g;
    g.lo = {lo_exit};
    g.hi = {hi_exit};
    m.transitions.push_back({"exit", 0, 1, g, false});
    m.safe = [unsafe_above](int, const state& x) { return x[0] <= unsafe_above; };
    return m;
}

TEST(simulate, reaches_exit_when_guard_ahead) {
    mds m = ramp_system(2.0, 3.0, 100.0);
    sim_config cfg;
    cfg.dt = 1e-3;
    sim_result r = simulate_in_mode(m, 0, {0.0}, cfg);
    EXPECT_EQ(r.outcome, sim_outcome::reached_exit);
    EXPECT_NEAR(r.final_state[0], 2.0, 1e-2);
    EXPECT_EQ(r.exit_transition, 0);
}

TEST(simulate, unsafe_before_exit) {
    mds m = ramp_system(50.0, 60.0, 10.0);  // guard beyond the unsafe wall
    sim_config cfg;
    sim_result r = simulate_in_mode(m, 0, {0.0}, cfg);
    EXPECT_EQ(r.outcome, sim_outcome::unsafe);
    EXPECT_NEAR(r.final_state[0], 10.0, 1e-1);
}

TEST(simulate, immediate_exit_at_entry) {
    mds m = ramp_system(0.0, 5.0, 100.0);
    sim_config cfg;
    sim_result r = simulate_in_mode(m, 0, {1.0}, cfg);
    EXPECT_EQ(r.outcome, sim_outcome::reached_exit);
    EXPECT_DOUBLE_EQ(r.time, 0.0);
}

TEST(simulate, dwell_blocks_early_exit) {
    mds m = ramp_system(0.0, 100.0, 1000.0);
    sim_config cfg;
    cfg.min_dwell = 2.0;
    sim_result r = simulate_in_mode(m, 0, {1.0}, cfg);
    EXPECT_EQ(r.outcome, sim_outcome::reached_exit);
    EXPECT_GE(r.time, 2.0);
    EXPECT_NEAR(r.final_state[0], 3.0, 1e-2);  // moved during the dwell
}

TEST(simulate, safe_timeout) {
    mds m = ramp_system(50.0, 60.0, 1e9);
    sim_config cfg;
    cfg.t_max = 1.0;
    sim_result r = simulate_in_mode(m, 0, {0.0}, cfg);
    EXPECT_EQ(r.outcome, sim_outcome::safe_timeout);
    EXPECT_TRUE(label_entry_state(m, 0, {0.0}, cfg));  // timeout counts safe
}

// ---- hyperbox learner ---------------------------------------------------------------

TEST(learner, recovers_synthetic_box_exactly) {
    box target;
    target.lo = {2.5, -1.0};
    target.hi = {7.25, 3.5};
    box over;
    over.lo = {0.0, -10.0};
    over.hi = {20.0, 10.0};
    learner_config cfg;
    cfg.grid = {0.25, 0.5};
    learner_stats stats;
    label_fn label = [&](const state& x) { return target.contains(x); };
    box learned = learn_guard(over, label, cfg, stats);
    ASSERT_FALSE(learned.empty());
    EXPECT_NEAR(learned.lo[0], 2.5, 1e-9);
    EXPECT_NEAR(learned.hi[0], 7.25, 1e-9);
    EXPECT_NEAR(learned.lo[1], -1.0, 1e-9);
    EXPECT_NEAR(learned.hi[1], 3.5, 1e-9);
    EXPECT_GT(stats.queries, 0u);
}

TEST(learner, parallel_seed_scan_matches_sequential) {
    // The wave-parallel seed scan labels candidates ahead of the in-order
    // scan: the learned box and the logical query counts must be identical
    // to the sequential walk, for both a populated and an empty guard.
    box target;
    target.lo = {2.5, -1.0};
    target.hi = {7.25, 3.5};
    box over;
    over.lo = {0.0, -10.0};
    over.hi = {20.0, 10.0};
    label_fn label = [&](const state& x) { return target.contains(x); };
    auto run = [&](unsigned threads, const label_fn& fn) {
        learner_config cfg;
        cfg.grid = {0.25, 0.5};
        cfg.probe_threads = threads;
        learner_stats stats;
        box learned = learn_guard(over, fn, cfg, stats);
        return std::pair{learned, stats};
    };
    auto [seq_box, seq_stats] = run(1, label);
    auto [par_box, par_stats] = run(4, label);
    ASSERT_FALSE(seq_box.empty());
    ASSERT_FALSE(par_box.empty());
    EXPECT_EQ(seq_box.lo, par_box.lo);
    EXPECT_EQ(seq_box.hi, par_box.hi);
    EXPECT_EQ(seq_stats.queries, par_stats.queries);
    EXPECT_EQ(seq_stats.seed_probes, par_stats.seed_probes);

    label_fn never = [](const state&) { return false; };
    auto [seq_empty, seq_empty_stats] = run(1, never);
    auto [par_empty, par_empty_stats] = run(4, never);
    EXPECT_TRUE(seq_empty.empty());
    EXPECT_TRUE(par_empty.empty());
    EXPECT_EQ(seq_empty_stats.seed_probes, par_empty_stats.seed_probes);
}

TEST(learner, empty_when_no_positive_region) {
    box over;
    over.lo = {0.0};
    over.hi = {10.0};
    learner_config cfg;
    cfg.grid = {0.1};
    learner_stats stats;
    box learned = learn_guard(over, [](const state&) { return false; }, cfg, stats);
    EXPECT_TRUE(learned.empty());
}

TEST(learner, finds_band_not_disconnected_low_region) {
    // Positives = [0,1) plus [5,7]: the learner anchored mid-box must find
    // the band, not bridge across the negative gap (the transmission's
    // transient mid-fixpoint shape).
    box over;
    over.lo = {0.0};
    over.hi = {10.0};
    learner_config cfg;
    cfg.grid = {0.01};
    cfg.coarse_step = {0.5};
    learner_stats stats;
    label_fn label = [](const state& x) {
        return (x[0] >= 0.0 && x[0] < 1.0) || (x[0] >= 5.0 && x[0] <= 7.0);
    };
    box learned = learn_guard(over, label, cfg, stats);
    ASSERT_FALSE(learned.empty());
    EXPECT_NEAR(learned.lo[0], 5.0, 0.02);
    EXPECT_NEAR(learned.hi[0], 7.0, 0.02);
}

TEST(learner, unconstrained_dimensions_preserved) {
    const double inf = std::numeric_limits<double>::infinity();
    box over;
    over.lo = {-inf, 0.0};
    over.hi = {inf, 10.0};
    learner_config cfg;
    cfg.grid = {1.0, 0.1};
    learner_stats stats;
    label_fn label = [](const state& x) { return x[1] >= 2.0 && x[1] <= 4.0; };
    box learned = learn_guard(over, label, cfg, stats);
    ASSERT_FALSE(learned.empty());
    EXPECT_TRUE(std::isinf(learned.lo[0]));
    EXPECT_TRUE(std::isinf(learned.hi[0]));
    EXPECT_NEAR(learned.lo[1], 2.0, 0.2);
    EXPECT_NEAR(learned.hi[1], 4.0, 0.2);
}

// Property: the learner recovers random grid-aligned boxes (valid H) from
// membership queries alone.
class learner_property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(learner_property, random_boxes_recovered) {
    util::rng r(GetParam());
    for (int iter = 0; iter < 25; ++iter) {
        const double g = 0.5;
        double lo = std::floor(r.next_double() * 10) * g;
        double hi = lo + (1 + r.next_below(10)) * g;
        box target;
        target.lo = {lo};
        target.hi = {hi};
        box over;
        over.lo = {-5.0};
        over.hi = {20.0};
        learner_config cfg;
        cfg.grid = {g};
        learner_stats stats;
        box learned =
            learn_guard(over, [&](const state& x) { return target.contains(x); }, cfg, stats);
        ASSERT_FALSE(learned.empty()) << "target [" << lo << "," << hi << "]";
        EXPECT_NEAR(learned.lo[0], lo, 1e-9);
        EXPECT_NEAR(learned.hi[0], hi, 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, learner_property, ::testing::Values(1, 2, 3, 4));

// ---- transmission: the paper's experiments -------------------------------------------

TEST(transmission, efficiency_curve) {
    EXPECT_NEAR(transmission_efficiency(1, 10), 1.0, 1e-9);
    EXPECT_NEAR(transmission_efficiency(2, 20), 1.0, 1e-9);
    EXPECT_GT(transmission_efficiency(1, 16.70), 0.5);
    EXPECT_LT(transmission_efficiency(1, 16.71), 0.5);
    EXPECT_LT(transmission_efficiency(2, 13.29), 0.5);
    EXPECT_GT(transmission_efficiency(2, 13.30), 0.5);
}

synthesis_config transmission_config(double dwell = 0.0) {
    synthesis_config cfg;
    cfg.sim.dt = 2e-3;
    cfg.sim.t_max = 200;
    cfg.sim.min_dwell = dwell;
    cfg.learner.grid = {50.0, 0.01};
    cfg.learner.coarse_step = {1000.0, 1.0};
    return cfg;
}

TEST(transmission, eq3_safety_guards) {
    mds sys = build_transmission();
    auto result = synthesize_switching_logic(sys, transmission_config());
    EXPECT_TRUE(result.converged);
    EXPECT_LE(result.passes, 4);
    auto omega = [&](const char* name) {
        const box& g = sys.transitions[static_cast<std::size_t>(sys.find_transition(name))].guard;
        return std::pair<double, double>{g.lo[1], g.hi[1]};
    };
    // Paper Eq. (3), up to one 0.01 grid cell on the analytic boundary:
    const double tol = 0.011;
    for (const char* g1 : {"gN1U", "g11U", "g21D", "g11D"}) {
        EXPECT_NEAR(omega(g1).first, 0.0, tol) << g1;
        EXPECT_NEAR(omega(g1).second, 16.70, tol) << g1;
    }
    for (const char* g2 : {"g12U", "g22U", "g32D", "g22D"}) {
        EXPECT_NEAR(omega(g2).first, 13.29, tol) << g2;
        EXPECT_NEAR(omega(g2).second, 26.70, tol) << g2;
    }
    for (const char* g3 : {"g23U", "g33U", "g33D"}) {
        EXPECT_NEAR(omega(g3).first, 23.29, tol) << g3;
        EXPECT_NEAR(omega(g3).second, 36.70, tol) << g3;
    }
    // Pinned goal guard untouched.
    auto [glo, ghi] = omega("g1ND");
    EXPECT_DOUBLE_EQ(glo, 0.0);
    EXPECT_DOUBLE_EQ(ghi, 0.0);
}

TEST(transmission, eq4_dwell_guards_shape) {
    mds sys = build_transmission();
    auto result = synthesize_switching_logic(sys, transmission_config(5.0));
    EXPECT_TRUE(result.converged);
    auto omega = [&](const char* name) {
        const box& g = sys.transitions[static_cast<std::size_t>(sys.find_transition(name))].guard;
        return std::pair<double, double>{g.lo[1], g.hi[1]};
    };
    // Exact matches with paper Eq. (4):
    EXPECT_NEAR(omega("g12U").second, 23.42, 0.02);
    EXPECT_NEAR(omega("g22U").second, 23.42, 0.02);
    EXPECT_NEAR(omega("g21D").first, 1.31, 0.02);
    EXPECT_NEAR(omega("g11D").first, 1.31, 0.02);
    EXPECT_NEAR(omega("g32D").first, 16.58, 0.02);
    EXPECT_NEAR(omega("g32D").second, 26.70, 0.02);
    EXPECT_NEAR(omega("g33U").second, 33.42, 0.02);
    // Dwell can only shrink guards relative to Eq. (3).
    EXPECT_LE(omega("gN1U").second, 16.70 + 0.011);
    EXPECT_LE(omega("g23U").second, 36.70 + 0.011);
}

TEST(transmission, fig10_trace_properties) {
    transmission_params params;
    mds sys = build_transmission(params);
    synthesize_switching_logic(sys, transmission_config());
    fig10_result trace = run_fig10_trace(sys, params);
    EXPECT_TRUE(trace.safety_held);
    EXPECT_TRUE(trace.reached_goal);
    // The gear sequence of Fig. 10.
    std::vector<std::string> want{"N", "G1U", "G2U", "G3U", "G3D", "G2D", "G1D", "N"};
    EXPECT_EQ(trace.mode_sequence, want);
    // Efficiency >= 0.5 whenever speed >= 5 (the synthesized guarantee).
    for (const auto& s : trace.samples) {
        if (s.mode != 0 && s.omega >= 5.0) { EXPECT_GE(s.eta, 0.5) << "t=" << s.t; }
    }
    // Speed envelope respected and actually exercised.
    double peak = 0;
    for (const auto& s : trace.samples) peak = std::max(peak, s.omega);
    EXPECT_LE(peak, 60.0);
    EXPECT_GT(peak, 30.0);
}

TEST(transmission, fig10_dwell_trace_respects_dwell) {
    transmission_params params;
    mds sys = build_transmission(params);
    synthesize_switching_logic(sys, transmission_config(5.0));
    fig10_result trace = run_fig10_trace(sys, params, 5.0);
    EXPECT_TRUE(trace.safety_held);
    EXPECT_GE(trace.min_mode_dwell, 5.0);  // paper: at least 5 s per gear mode
    for (const auto& s : trace.samples) {
        if (s.mode != 0 && s.omega >= 5.0) { EXPECT_GE(s.eta, 0.5); }
    }
}

TEST(transmission, synthesis_reports_conditional_soundness) {
    mds sys = build_transmission();
    auto result = synthesize_switching_logic(sys, transmission_config());
    EXPECT_EQ(result.report.guarantee, core::guarantee_kind::sound_and_complete);
    EXPECT_NE(result.report.hypothesis.name.find("hyperbox"), std::string::npos);
    EXPECT_GT(result.simulator_queries, 0u);
}

}  // namespace
}  // namespace sciduction::hybrid
