// The solve_request/query_handle API: strategy resolution precedence, the
// auto_select classifier, solve-vs-submit equivalence, request validation,
// the solve_status error model, cancellation, coalescing, budgets, and the
// CNF-level solve_cnf dispatcher.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "engine_test_util.hpp"
#include "sat/pigeonhole.hpp"
#include "substrate/engine.hpp"
#include "substrate/solve_request.hpp"

namespace sciduction::substrate {
namespace {

using sat::encode_pigeonhole;

// ---- strategy resolution ----------------------------------------------------

resolved_strategy engine_like_defaults() {
    resolved_strategy d;
    d.members = 3;
    d.sequential = true;
    d.depth = 2;
    d.probe_candidates = 8;
    d.sharing.enabled = true;
    d.use_cache = true;
    return d;
}

TEST(strategy_resolution, unset_fields_inherit_defaults) {
    resolved_strategy r = strategy::portfolio().resolve(engine_like_defaults());
    EXPECT_EQ(r.kind, strategy_kind::portfolio);
    EXPECT_EQ(r.members, 3u);
    EXPECT_TRUE(r.sequential);
    EXPECT_TRUE(r.sharing.enabled);
    EXPECT_TRUE(r.use_cache);
}

TEST(strategy_resolution, per_request_fields_override_defaults) {
    strategy s = strategy::portfolio(8);
    s.sequential = false;
    s.sharing = sharing_config{};  // explicitly off
    s.use_cache = false;
    s.conflict_budget = 123;
    resolved_strategy r = s.resolve(engine_like_defaults());
    EXPECT_EQ(r.members, 8u);
    EXPECT_FALSE(r.sequential);
    EXPECT_FALSE(r.sharing.enabled);
    EXPECT_FALSE(r.use_cache);
    EXPECT_EQ(r.conflict_budget, 123u);
}

TEST(strategy_resolution, degenerate_combinations_normalize_like_legacy) {
    resolved_strategy no_shard;  // engine with shard_depth == 0, 1 member
    // A shard request against a depth-0 default degrades through the
    // portfolio resolution down to a single solve — exactly what the legacy
    // check_sharded did with shard_depth == 0.
    EXPECT_EQ(strategy::shard().resolve(no_shard).kind, strategy_kind::single);
    // A 1-member portfolio is a single solve.
    EXPECT_EQ(strategy::portfolio(1).resolve(no_shard).kind, strategy_kind::single);
    // Explicit depth keeps the shard kind regardless of the default.
    EXPECT_EQ(strategy::shard(2).resolve(no_shard).kind, strategy_kind::shard);
    EXPECT_EQ(strategy::shard_over_portfolio(2).resolve(no_shard).kind,
              strategy_kind::shard_over_portfolio);
    // automatic keeps its kind (the engine classifies later).
    EXPECT_EQ(strategy{}.resolve(no_shard).kind, strategy_kind::automatic);
}

// ---- the auto_select classifier --------------------------------------------

TEST(auto_select, tiny_query_stays_single) {
    query_features f;
    f.variables = 40;
    f.clauses = 120;
    f.threads = 8;
    EXPECT_EQ(strategy::auto_select(f).kind, strategy_kind::single);
}

TEST(auto_select, assumption_carrying_query_stays_single) {
    query_features f;
    f.variables = 5000;
    f.clauses = 15000;
    f.assumptions = 3;
    f.threads = 8;
    EXPECT_EQ(strategy::auto_select(f).kind, strategy_kind::single);
}

TEST(auto_select, medium_query_races_a_portfolio_sequential_on_one_thread) {
    query_features f;
    f.variables = 5000;
    f.clauses = 15000;
    f.threads = 4;
    strategy threaded = strategy::auto_select(f);
    EXPECT_EQ(threaded.kind, strategy_kind::portfolio);
    EXPECT_FALSE(threaded.sequential.value_or(false));
    f.threads = 1;
    strategy onecore = strategy::auto_select(f);
    EXPECT_EQ(onecore.kind, strategy_kind::portfolio);
    EXPECT_TRUE(onecore.sequential.value_or(false));
}

TEST(auto_select, large_query_shards_with_depth_log2_threads) {
    query_features f;
    f.variables = 80000;
    f.clauses = 250000;
    f.threads = 4;
    strategy s = strategy::auto_select(f);
    EXPECT_EQ(s.kind, strategy_kind::shard);
    EXPECT_EQ(s.depth.value_or(0), 2u);
}

TEST(auto_select, history_dominates_size_features) {
    query_features f;
    f.variables = 100;  // tiny by size...
    f.clauses = 300;
    f.threads = 4;
    f.has_history = true;
    f.prior_conflicts = auto_select_thresholds::easy_conflicts - 1;
    EXPECT_EQ(strategy::auto_select(f).kind, strategy_kind::single);
    f.prior_conflicts = auto_select_thresholds::easy_conflicts;
    EXPECT_EQ(strategy::auto_select(f).kind, strategy_kind::portfolio);
    f.prior_conflicts = auto_select_thresholds::hard_conflicts;
    EXPECT_EQ(strategy::auto_select(f).kind, strategy_kind::shard);
    f.prior_conflicts = auto_select_thresholds::brutal_conflicts;
    EXPECT_EQ(strategy::auto_select(f).kind, strategy_kind::shard_over_portfolio);
}

TEST(auto_select, deterministic_for_equal_features) {
    query_features f;
    f.variables = 5000;
    f.clauses = 15000;
    f.threads = 2;
    for (int i = 0; i < 5; ++i) {
        strategy a = strategy::auto_select(f);
        strategy b = strategy::auto_select(f);
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.depth.value_or(0), b.depth.value_or(0));
        EXPECT_EQ(a.sequential.value_or(false), b.sequential.value_or(false));
    }
}

// ---- solve-vs-submit equivalence --------------------------------------------

smt::term unsat_commut(smt::term_manager& tm) {
    smt::term x = tm.mk_bv_var("x", 16);
    smt::term y = tm.mk_bv_var("y", 16);
    return tm.mk_distinct(tm.mk_bvadd(x, y),
                          tm.mk_bvsub(tm.mk_bvadd(tm.mk_bvadd(y, x), y), y));
}

void expect_same_counters(const engine_stats& a, const engine_stats& b) {
    EXPECT_EQ(a.queries, b.queries);
    EXPECT_EQ(a.cache_hits, b.cache_hits);
    EXPECT_EQ(a.solver_runs, b.solver_runs);
    EXPECT_EQ(a.coalesced, b.coalesced);
    EXPECT_EQ(a.dispatched.total(), b.dispatched.total());
}

TEST(api_v2, solve_equals_submit_with_engine_default_portfolio) {
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 16);
    smt::term sat_q = tm.mk_and(tm.mk_ult(tm.mk_bv_const(16, 10), x),
                                tm.mk_ult(x, tm.mk_bv_const(16, 100)));
    smt_engine via_solve(tm);
    smt_engine via_submit(tm);
    backend_result a = via_solve.solve({{sat_q}, {}, strategy::portfolio()});
    backend_result b = via_submit.submit({{sat_q}, {}, strategy::portfolio()}).get();
    ASSERT_TRUE(a.is_sat());
    ASSERT_TRUE(b.is_sat());
    EXPECT_EQ(a.status, solve_status::ok);
    // Single-member solves are fully deterministic: identical model values
    // and identical cost whether run inline (solve) or on the pool (submit).
    EXPECT_EQ(eval_model(tm, x, a.model), eval_model(tm, x, b.model));
    EXPECT_EQ(a.conflicts, b.conflicts);
    expect_same_counters(via_solve.stats(), via_submit.stats());
    // Re-solving is a cache hit on both paths.
    EXPECT_TRUE(via_solve.solve({{sat_q}, {}, strategy::portfolio()}).is_sat());
    EXPECT_TRUE(via_submit.submit({{sat_q}, {}, strategy::portfolio()}).get().is_sat());
    expect_same_counters(via_solve.stats(), via_submit.stats());
}

TEST(api_v2, solve_equals_submit_shard_strategy) {
    smt::term_manager tm_a;
    smt::term_manager tm_b;
    smt_engine via_solve(tm_a, {.threads = 2, .shard_depth = 2});
    smt_engine via_submit(tm_b, {.threads = 2, .shard_depth = 2});
    shard_stats inline_stats;
    backend_result a = solve_sharded(via_solve, {unsat_commut(tm_a)}, &inline_stats);
    query_handle handle = via_submit.submit({{unsat_commut(tm_b)}, {}, strategy::shard()});
    backend_result b = handle.get();
    EXPECT_EQ(a.ans, answer::unsat);
    EXPECT_EQ(b.ans, answer::unsat);
    // All-UNSAT shard work is deterministic: identical breakdown and cost.
    EXPECT_EQ(inline_stats, handle.stats().shard);
    EXPECT_GT(inline_stats.cubes, 0u);
    EXPECT_EQ(a.conflicts, b.conflicts);
    expect_same_counters(via_solve.stats(), via_submit.stats());
}

TEST(api_v2, batch_of_singles_equals_submit_many_await_all) {
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 16);
    std::vector<smt_query> queries;
    for (std::uint64_t i = 0; i < 8; ++i)
        queries.push_back({{tm.mk_eq(x, tm.mk_bv_const(16, i))}, {}});
    smt_engine via_batch(tm, {.threads = 2});
    smt_engine via_submit(tm, {.threads = 2});
    auto batched = solve_batch(via_batch, queries);
    std::vector<query_handle> handles;
    for (const auto& q : queries)
        handles.push_back(via_submit.submit({q.assertions, q.assumptions, strategy::single()}));
    ASSERT_EQ(batched.size(), handles.size());
    for (std::size_t i = 0; i < handles.size(); ++i) {
        backend_result direct = handles[i].get();
        EXPECT_EQ(batched[i].ans, direct.ans) << i;
        EXPECT_EQ(eval_model(tm, x, batched[i].model), eval_model(tm, x, direct.model)) << i;
    }
    expect_same_counters(via_batch.stats(), via_submit.stats());
}

TEST(api_v2, shared_future_resolves_and_populates_the_cache) {
    smt::term_manager tm;
    smt_engine engine(tm, {.threads = 2});
    auto future = submit_portfolio(engine, {unsat_commut(tm)});
    EXPECT_EQ(future.get().ans, answer::unsat);
    // The same query through submit: a cache hit resolving immediately.
    query_handle handle = engine.submit({{unsat_commut(tm)}, {}, strategy::portfolio()});
    EXPECT_TRUE(handle.ready());
    EXPECT_EQ(handle.share().get().ans, answer::unsat);
    EXPECT_TRUE(handle.stats().cache_hit);
}

// ---- config precedence ------------------------------------------------------

TEST(config_precedence, sequential_portfolio_plus_shard_request_shards) {
    // Regression for the previously ambiguous combination: an engine
    // configured with BOTH the budgeted sequential portfolio and a shard
    // depth. The contract: a shard-kind request shards; a portfolio-kind
    // request runs the sequential portfolio. Per-request kind wins over
    // engine-global flags.
    smt::term_manager tm;
    smt_engine engine(tm, {.use_cache = false,
                           .portfolio_members = 3,
                           .threads = 2,
                           .shard_depth = 2,
                           .sequential_portfolio = true});
    query_handle sharded = engine.submit({{unsat_commut(tm)}, {}, strategy::shard()});
    EXPECT_EQ(sharded.get().ans, answer::unsat);
    EXPECT_EQ(sharded.stats().strategy.kind, strategy_kind::shard);
    EXPECT_GT(sharded.stats().shard.cubes, 0u);
    EXPECT_EQ(engine.stats().dispatched.shard, 1u);
    EXPECT_EQ(engine.stats().dispatched.portfolio, 0u);

    query_handle raced = engine.submit({{unsat_commut(tm)}, {}, strategy::portfolio()});
    EXPECT_EQ(raced.get().ans, answer::unsat);
    EXPECT_EQ(raced.stats().strategy.kind, strategy_kind::portfolio);
    EXPECT_TRUE(raced.stats().strategy.sequential);
    EXPECT_EQ(raced.stats().shard.cubes, 0u);
    EXPECT_EQ(engine.stats().dispatched.portfolio, 1u);

    // And the default-depth shard shape inherits exactly that split.
    shard_stats depth_default;
    EXPECT_EQ(solve_sharded(engine, {unsat_commut(tm)}, &depth_default).ans, answer::unsat);
    EXPECT_GT(depth_default.cubes, 0u);
    EXPECT_EQ(engine.stats().dispatched.shard, 2u);
}

TEST(config_precedence, per_request_cache_bypass_overrides_engine_default) {
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 8);
    smt::term q = tm.mk_ult(x, tm.mk_bv_const(8, 5));
    smt_engine engine(tm);  // cache on by default
    strategy bypass = strategy::single();
    bypass.use_cache = false;
    EXPECT_TRUE(engine.submit({{q}, {}, bypass}).get().is_sat());
    EXPECT_TRUE(engine.submit({{q}, {}, bypass}).get().is_sat());
    // Neither populated nor consulted the cache: two real solves.
    EXPECT_EQ(engine.stats().cache_hits, 0u);
    EXPECT_EQ(engine.stats().solver_runs, 2u);
    EXPECT_EQ(engine.cache().size(), 0u);
    // A cached request now solves once more and later hits.
    EXPECT_TRUE(engine.submit({{q}, {}, strategy::single()}).get().is_sat());
    EXPECT_TRUE(engine.submit({{q}, {}, strategy::single()}).get().is_sat());
    EXPECT_EQ(engine.stats().cache_hits, 1u);
    EXPECT_EQ(engine.stats().solver_runs, 3u);
}

TEST(config_precedence, per_request_members_override_engine_members) {
    smt::term_manager tm;
    smt_engine engine(tm, {.use_cache = false, .portfolio_members = 1, .threads = 2});
    query_handle handle = engine.submit({{unsat_commut(tm)}, {}, strategy::portfolio(3)});
    EXPECT_EQ(handle.get().ans, answer::unsat);
    EXPECT_EQ(handle.stats().strategy.members, 3u);
    EXPECT_EQ(engine.stats().solver_runs, 3u);
    EXPECT_EQ(engine.stats().dispatched.portfolio, 1u);
}

// ---- the automatic strategy end-to-end --------------------------------------

TEST(auto_strategy, tiny_query_dispatches_single_and_counts_the_pick) {
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 8);
    smt::term q = tm.mk_ult(x, tm.mk_bv_const(8, 5));
    smt_engine engine(tm);
    query_handle handle = engine.submit({{q}, {}, strategy{}});
    EXPECT_TRUE(handle.get().is_sat());
    request_stats rstats = handle.stats();
    EXPECT_TRUE(rstats.auto_selected);
    EXPECT_EQ(rstats.strategy.kind, strategy_kind::single);
    EXPECT_EQ(engine.stats().auto_picks.single, 1u);
    EXPECT_EQ(engine.stats().auto_picks.total(), 1u);
    EXPECT_EQ(engine.stats().dispatched.single, 1u);
    // The cache short-circuits the classifier on the re-submit.
    EXPECT_TRUE(engine.submit({{q}, {}, strategy{}}).get().is_sat());
    EXPECT_EQ(engine.stats().auto_picks.total(), 1u);
    EXPECT_EQ(engine.stats().cache_hits, 1u);
}

TEST(auto_strategy, explicit_fields_survive_the_classifier) {
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 8);
    smt::term q = tm.mk_ult(x, tm.mk_bv_const(8, 9));
    smt_engine engine(tm);
    strategy s;  // automatic…
    s.conflict_budget = 77;
    s.use_cache = false;
    query_handle handle = engine.submit({{q}, {}, s});
    EXPECT_TRUE(handle.get().is_sat());
    request_stats rstats = handle.stats();
    EXPECT_TRUE(rstats.auto_selected);
    EXPECT_EQ(rstats.strategy.conflict_budget, 77u);
    EXPECT_FALSE(rstats.strategy.use_cache);
    EXPECT_EQ(engine.cache().size(), 0u);
}

// ---- shard_over_portfolio + progress ----------------------------------------

TEST(shard_over_portfolio, decides_and_reports_diversified_pairs) {
    smt::term_manager tm;
    smt_engine engine(tm, {.use_cache = false, .threads = 2});
    query_handle handle =
        engine.submit({{unsat_commut(tm)}, {}, strategy::shard_over_portfolio(2)});
    EXPECT_EQ(handle.get().ans, answer::unsat);
    request_stats rstats = handle.stats();
    EXPECT_EQ(rstats.strategy.kind, strategy_kind::shard_over_portfolio);
    EXPECT_GT(rstats.shard.cubes, 0u);
    EXPECT_EQ(engine.stats().dispatched.shard_over_portfolio, 1u);
    // Progress settled every cube.
    query_progress progress = handle.progress();
    EXPECT_TRUE(progress.started);
    EXPECT_TRUE(progress.finished);
    EXPECT_EQ(progress.cubes_total, rstats.shard.cubes);
    EXPECT_EQ(progress.cubes_done, progress.cubes_total);
}

// ---- coalescing under the new API -------------------------------------------

TEST(coalescing, duplicate_submits_share_one_solve) {
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 6);
    smt::term y = tm.mk_bv_var("y", 6);
    smt::term hard = tm.mk_distinct(tm.mk_bvmul(x, tm.mk_bvadd(y, y)),
                                    tm.mk_bvadd(tm.mk_bvmul(x, y), tm.mk_bvmul(x, y)));
    smt_engine engine(tm, {.threads = 2});
    query_handle h1 = engine.submit({{hard}, {}, strategy::single()});
    query_handle h2 = engine.submit({{hard}, {}, strategy::single()});
    query_handle h3 = engine.submit({{hard}, {}, strategy::single()});
    EXPECT_EQ(h1.get().ans, answer::unsat);
    EXPECT_EQ(h2.get().ans, answer::unsat);
    EXPECT_EQ(h3.get().ans, answer::unsat);
    auto stats = engine.stats();
    EXPECT_EQ(stats.solver_runs, 1u);
    EXPECT_EQ(stats.coalesced + stats.cache_hits, 2u);
    EXPECT_EQ(stats.queries, 3u);
}

// ---- cancellation and budgets -----------------------------------------------

/// A genuinely hard UNSAT query (three width-`w` multipliers) that cannot
/// finish within the test's cancellation window.
smt::term hard_distributivity(smt::term_manager& tm, unsigned w) {
    smt::term x = tm.mk_bv_var("hx", w);
    smt::term y = tm.mk_bv_var("hy", w);
    smt::term z = tm.mk_bv_var("hz", w);
    return tm.mk_distinct(tm.mk_bvmul(x, tm.mk_bvadd(y, z)),
                          tm.mk_bvadd(tm.mk_bvmul(x, y), tm.mk_bvmul(x, z)));
}

void wait_until_started(const query_handle& handle) {
    while (!handle.progress().started) std::this_thread::yield();
}

TEST(cancellation, portfolio_cancel_mid_solve_yields_unknown) {
    smt::term_manager tm;
    smt_engine engine(tm, {.use_cache = false, .portfolio_members = 2, .threads = 2});
    query_handle handle =
        engine.submit({{hard_distributivity(tm, 8)}, {}, strategy::portfolio()});
    wait_until_started(handle);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    handle.cancel();
    backend_result r = handle.get();
    EXPECT_EQ(r.ans, answer::unknown);
    EXPECT_EQ(r.status, solve_status::cancelled);
    EXPECT_TRUE(handle.progress().cancel_requested);
}

TEST(cancellation, shard_cancel_mid_solve_yields_unknown) {
    smt::term_manager tm;
    smt_engine engine(tm, {.use_cache = false, .threads = 2});
    query_handle handle =
        engine.submit({{hard_distributivity(tm, 8)}, {}, strategy::shard(2)});
    wait_until_started(handle);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    handle.cancel();
    EXPECT_EQ(handle.get().ans, answer::unknown);
    // Cancelled solves are never cached: a fresh submit would re-solve.
    EXPECT_EQ(engine.cache().size(), 0u);
}

TEST(cancellation, conflict_budget_yields_unknown_then_full_solve_decides) {
    smt::term_manager tm;
    smt::term hard = hard_distributivity(tm, 6);
    strategy budgeted = strategy::single();
    budgeted.conflict_budget = 10;
    budgeted.use_cache = false;
    smt_engine engine(tm);
    backend_result capped = engine.submit({{hard}, {}, budgeted}).get();
    EXPECT_EQ(capped.ans, answer::unknown);
    EXPECT_EQ(capped.status, solve_status::over_budget);
    EXPECT_EQ(engine.submit({{hard}, {}, strategy::single()}).get().ans, answer::unsat);
}

TEST(cancellation, coalesced_duplicate_keeps_its_own_time_budget) {
    smt::term_manager tm;
    smt_engine engine(tm, {.use_cache = false, .threads = 2});
    smt::term hard = hard_distributivity(tm, 8);
    query_handle first = engine.submit({{hard}, {}, strategy::single()});
    strategy timed = strategy::single();
    timed.time_budget_ms = 30;
    query_handle second = engine.submit({{hard}, {}, timed});
    ASSERT_TRUE(second.stats().coalesced);
    // The duplicate shares the solve but not the (absent) first budget:
    // its get() cancels the shared solve after 30ms. The status model keeps
    // the two perspectives apart: the expiring handle reports timeout, the
    // innocent bystander sees the solve it shared get cancelled.
    backend_result expired = second.get();
    EXPECT_EQ(expired.ans, answer::unknown);
    EXPECT_EQ(expired.status, solve_status::timeout);
    backend_result bystander = first.get();
    EXPECT_EQ(bystander.ans, answer::unknown);
    EXPECT_EQ(bystander.status, solve_status::cancelled);
}

TEST(cancellation, time_budget_enforced_at_get) {
    smt::term_manager tm;
    smt_engine engine(tm, {.use_cache = false, .threads = 2});
    strategy timed = strategy::single();
    timed.time_budget_ms = 30;
    const auto before = std::chrono::steady_clock::now();
    query_handle handle = engine.submit({{hard_distributivity(tm, 8)}, {}, timed});
    backend_result timed_out = handle.get();
    EXPECT_EQ(timed_out.ans, answer::unknown);
    EXPECT_EQ(timed_out.status, solve_status::timeout);
    // Generous bound: the point is that get() returned promptly instead of
    // waiting out the (minutes-long) full refutation.
    EXPECT_LT(std::chrono::steady_clock::now() - before, std::chrono::seconds(30));
}

// ---- request validation and the status model --------------------------------

TEST(validation, rejected_strategy_shapes_name_the_offending_field) {
    strategy zero_members = strategy::portfolio();
    zero_members.members = 0;
    EXPECT_NE(zero_members.validate().find("members"), std::string::npos);

    EXPECT_NE(strategy::shard(13).validate().find("depth"), std::string::npos);

    strategy no_probes = strategy::shard(2);
    no_probes.probe_candidates = 0;
    EXPECT_NE(no_probes.validate().find("probe_candidates"), std::string::npos);

    sharing_config degenerate;
    degenerate.enabled = true;
    degenerate.max_clause_size = 0;
    strategy cannot_share = strategy::portfolio();
    cannot_share.sharing = degenerate;
    EXPECT_NE(cannot_share.validate().find("max_clause_size"), std::string::npos);

    degenerate.max_clause_size = 8;
    degenerate.slice_conflicts = 0;
    cannot_share.sharing = degenerate;
    EXPECT_NE(cannot_share.validate().find("slice_conflicts"), std::string::npos);

    EXPECT_TRUE(strategy::portfolio(4).validate().empty());
    EXPECT_TRUE(strategy::shard(12).validate().empty());
}

TEST(validation, malformed_request_reported_through_status_not_thrown) {
    smt::term_manager tm;
    smt_engine engine(tm);
    solve_request bad;
    bad.assertions = {smt::term{}};  // default-constructed = invalid
    EXPECT_NE(bad.validate().find("assertion"), std::string::npos);
    query_handle handle = engine.submit(std::move(bad));
    // Resolves immediately: nothing was dispatched.
    EXPECT_TRUE(handle.ready());
    backend_result r = handle.get();
    EXPECT_EQ(r.ans, answer::unknown);
    EXPECT_EQ(r.status, solve_status::malformed);
    EXPECT_FALSE(r.status_detail.empty());
    EXPECT_EQ(handle.stats().status, solve_status::malformed);
    EXPECT_EQ(engine.stats().solver_runs, 0u);

    solve_request bad_strategy;
    bad_strategy.assertions = {tm.mk_bv_var("x", 4)};
    bad_strategy.strategy.members = 0;
    backend_result s = engine.solve(std::move(bad_strategy));
    EXPECT_EQ(s.status, solve_status::malformed);
    EXPECT_NE(s.status_detail.find("members"), std::string::npos);
}

TEST(validation, engine_config_programming_errors_throw) {
    smt::term_manager tm;
    EXPECT_THROW(smt_engine(tm, {.portfolio_members = 0}), std::invalid_argument);
    EXPECT_THROW(smt_engine(tm, {.shard_depth = 13}), std::invalid_argument);
    EXPECT_THROW(smt_engine(tm, {.shard_probe_candidates = 0}), std::invalid_argument);
}

TEST(status_model, definite_answers_and_cache_hits_report_ok) {
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 8);
    smt::term q = tm.mk_ult(x, tm.mk_bv_const(8, 5));
    smt_engine engine(tm);
    backend_result solved = engine.solve({{q}, {}, strategy::single()});
    EXPECT_TRUE(solved.is_sat());
    EXPECT_EQ(solved.status, solve_status::ok);
    backend_result hit = engine.solve({{q}, {}, strategy::single()});
    EXPECT_EQ(hit.status, solve_status::ok);
    EXPECT_EQ(engine.stats().cache_hits, 1u);
    EXPECT_EQ(to_string(solve_status::ok), std::string("ok"));
    EXPECT_EQ(to_string(solve_status::over_budget), std::string("over_budget"));
}

// ---- the CNF-level dispatcher -----------------------------------------------

TEST(solve_cnf, all_strategies_refute_pigeonhole) {
    auto build = [](unsigned, sat::solver& s) { encode_pigeonhole(s, 6); };
    for (strategy s : {strategy::single(), strategy::portfolio(3), strategy::shard(2),
                       strategy::shard_over_portfolio(2)}) {
        cnf_outcome out = solve_cnf(build, s, 2);
        EXPECT_EQ(out.result.ans, answer::unsat) << to_string(s.kind);
        EXPECT_EQ(out.executed, s.kind);
        EXPECT_GT(out.total_conflicts, 0u) << to_string(s.kind);
    }
}

TEST(solve_cnf, shard_reports_cube_breakdown) {
    cnf_outcome out = solve_cnf([](unsigned, sat::solver& s) { encode_pigeonhole(s, 6); },
                                strategy::shard(2), 2);
    EXPECT_EQ(out.result.ans, answer::unsat);
    EXPECT_EQ(out.shard.cubes, 4u);
    EXPECT_EQ(out.shard.refuted + out.shard.pruned, out.shard.cubes);
}

TEST(solve_cnf, automatic_classifies_small_instance_as_single) {
    cnf_outcome out = solve_cnf(
        [](unsigned, sat::solver& s) {
            sat::var a = s.new_var();
            s.add_clause(sat::mk_lit(a));
        },
        strategy{}, 2);
    EXPECT_EQ(out.result.ans, answer::sat);
    EXPECT_EQ(out.executed, strategy_kind::single);
}

TEST(solve_cnf, external_cancel_aborts_portfolio_and_shard) {
    auto build = [](unsigned, sat::solver& s) { encode_pigeonhole(s, 10); };
    for (strategy s : {strategy::portfolio(2), strategy::shard(2)}) {
        std::atomic<bool> cancel{false};
        solve_controls controls;
        controls.cancel = &cancel;
        std::thread trigger([&cancel] {
            std::this_thread::sleep_for(std::chrono::milliseconds(30));
            cancel.store(true);
        });
        cnf_outcome out = solve_cnf(build, s, 2, controls);
        trigger.join();
        EXPECT_EQ(out.result.ans, answer::unknown) << to_string(s.kind);
    }
}

TEST(solve_cnf, automatic_preserves_explicit_request_fields) {
    strategy s;  // automatic…
    s.conflict_budget = 5;  // …with an explicit budget that must survive
    cnf_outcome out =
        solve_cnf([](unsigned, sat::solver& sol) { encode_pigeonhole(sol, 7); }, s, 2);
    EXPECT_EQ(out.result.ans, answer::unknown);
    // Bound generous enough for either classification: one instance at
    // ~budget conflicts, or 4 portfolio members at ~budget each.
    EXPECT_LE(out.total_conflicts, 24u);
}

TEST(solve_cnf, conflict_budget_bounds_the_work) {
    strategy s = strategy::single();
    s.conflict_budget = 5;
    cnf_outcome out =
        solve_cnf([](unsigned, sat::solver& sol) { encode_pigeonhole(sol, 7); }, s, 1);
    EXPECT_EQ(out.result.ans, answer::unknown);
    // The pause lands on the budget boundary, give or take the final
    // conflict in flight.
    EXPECT_LE(out.total_conflicts, 6u);
}

TEST(solve_cnf, member_index_reaches_the_builder) {
    std::vector<unsigned> seen(3, 999);
    strategy s = strategy::portfolio(3);
    cnf_outcome out = solve_cnf(
        [&](unsigned member, sat::solver& sol) {
            seen[member] = member;
            encode_pigeonhole(sol, 5);
        },
        s, 2);
    EXPECT_EQ(out.result.ans, answer::unsat);
    EXPECT_LT(out.winner, 3u);
    EXPECT_EQ(seen[out.winner], out.winner);
}

}  // namespace
}  // namespace sciduction::substrate
