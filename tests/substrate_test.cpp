#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <future>
#include <mutex>
#include <numeric>
#include <set>

#include "gametime/gametime.hpp"
#include "invgen/invgen.hpp"
#include "ir/parser.hpp"
#include "ir/transform.hpp"
#include "ogis/benchmarks.hpp"
#include "sat/pigeonhole.hpp"
#include "engine_test_util.hpp"
#include "substrate/engine.hpp"
#include "substrate/oracle_cache.hpp"
#include "substrate/portfolio.hpp"
#include "substrate/query_cache.hpp"
#include "substrate/thread_pool.hpp"

namespace sciduction::substrate {
namespace {

// ---- thread pool ------------------------------------------------------------

TEST(thread_pool, parallel_for_covers_every_index) {
    thread_pool pool(4);
    std::vector<std::atomic<int>> hits(257);
    pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(thread_pool, parallel_for_propagates_exceptions) {
    thread_pool pool(2);
    EXPECT_THROW(pool.parallel_for(16,
                                   [](std::size_t i) {
                                       if (i == 7) throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
}

TEST(thread_pool, parallel_map_preserves_order) {
    auto out = parallel_map<std::size_t>(100, 4, [](std::size_t i) { return i * i; });
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(thread_pool, submit_returns_future) {
    thread_pool pool(2);
    auto f = pool.submit([] { return 41 + 1; });
    EXPECT_EQ(f.get(), 42);
}

// ---- dispatch lanes ---------------------------------------------------------

TEST(thread_pool_lanes, weighted_round_robin_interleaves_lanes) {
    // One worker, gated so both lanes are fully queued before any task
    // runs: the drain order then exposes the scheduling policy directly.
    thread_pool pool(1);
    std::mutex gate_mutex;
    std::condition_variable gate_cv;
    bool gate_open = false;
    auto gate = pool.submit([&] {
        std::unique_lock<std::mutex> lock(gate_mutex);
        gate_cv.wait(lock, [&] { return gate_open; });
    });
    thread_pool::lane_id heavy = pool.create_lane(2);
    thread_pool::lane_id light = pool.create_lane(1);
    std::mutex order_mutex;
    std::vector<char> order;
    std::vector<std::future<void>> tasks;
    for (int i = 0; i < 4; ++i)
        tasks.push_back(pool.submit_in(heavy, [&] {
            std::scoped_lock lock(order_mutex);
            order.push_back('H');
        }));
    for (int i = 0; i < 4; ++i)
        tasks.push_back(pool.submit_in(light, [&] {
            std::scoped_lock lock(order_mutex);
            order.push_back('L');
        }));
    EXPECT_EQ(pool.pending_in(heavy), 4u);
    EXPECT_EQ(pool.pending_in(light), 4u);
    {
        std::scoped_lock lock(gate_mutex);
        gate_open = true;
    }
    gate_cv.notify_all();
    for (auto& t : tasks) t.get();
    gate.get();
    ASSERT_EQ(order.size(), 8u);
    // Weighted round-robin: whichever lane the cursor reaches first, the
    // other lane is served within `weight` pops — a FIFO pool would run
    // all four H before the first L.
    auto first = [&](char c) {
        return static_cast<std::size_t>(std::find(order.begin(), order.end(), c) -
                                        order.begin());
    };
    EXPECT_LE(first('H'), 2u);
    EXPECT_LE(first('L'), 2u);
    // And the weight bounds every H streak while L work is still queued.
    std::size_t streak = 0;
    for (std::size_t i = 0; i + 2 < order.size(); ++i) {
        streak = order[i] == 'H' ? streak + 1 : 0;
        EXPECT_LE(streak, 2u) << "at index " << i;
    }
    pool.release_lane(heavy);
    pool.release_lane(light);
}

TEST(thread_pool_lanes, released_lane_still_drains_and_later_submits_fall_back) {
    thread_pool pool(2);
    thread_pool::lane_id lane = pool.create_lane(3);
    auto queued = pool.submit_in(lane, [] { return 7; });
    pool.release_lane(lane);
    EXPECT_EQ(queued.get(), 7);
    // The id is retired: submits into it land in the default lane and run.
    EXPECT_EQ(pool.submit_in(lane, [] { return 8; }).get(), 8);
    EXPECT_EQ(pool.pending_in(lane), 0u);
}

TEST(thread_pool_lanes, nested_submits_inherit_the_submitters_lane) {
    // A lane task fans out via plain submit(); the children must land in
    // the parent's lane (pending_in observes them while the pool is gated
    // by the parent itself still running).
    thread_pool pool(1);
    thread_pool::lane_id lane = pool.create_lane(2);
    std::promise<std::size_t> seen_pending;
    auto parent = pool.submit_in(lane, [&] {
        auto child = pool.submit([] {});
        (void)child;
        seen_pending.set_value(pool.pending_in(lane));
    });
    EXPECT_EQ(seen_pending.get_future().get(), 1u)
        << "nested submit should queue into the inherited lane";
    parent.get();
    pool.release_lane(lane);
}

// ---- interrupt support ------------------------------------------------------

using sat::encode_pigeonhole;  // the shared hard-UNSAT family (sat/pigeonhole.hpp)

TEST(interrupt, preset_flag_aborts_solve_as_unknown) {
    sat::solver s;
    encode_pigeonhole(s, 8);
    std::atomic<bool> cancel{true};
    s.set_interrupt(&cancel);
    EXPECT_EQ(s.solve(), sat::solve_result::unknown);
    // Detached, the same instance still decides normally.
    s.set_interrupt(nullptr);
    EXPECT_EQ(s.solve(), sat::solve_result::unsat);
}

TEST(interrupt, never_fires_without_flag) {
    sat::solver s;
    encode_pigeonhole(s, 5);
    EXPECT_EQ(s.solve(), sat::solve_result::unsat);
}

// ---- solver options ---------------------------------------------------------

TEST(solver_options, diversified_members_agree_on_answer) {
    for (unsigned member = 0; member < 6; ++member) {
        sat::solver s;
        s.set_options(diversified_options(member));
        encode_pigeonhole(s, 5);
        EXPECT_EQ(s.solve(), sat::solve_result::unsat) << "member " << member;
    }
}

TEST(solver_options, default_options_are_baseline) {
    sat::solver_options defaults;
    sat::solver_options member0 = diversified_options(0);
    EXPECT_EQ(member0.var_decay, defaults.var_decay);
    EXPECT_EQ(member0.random_branch_freq, defaults.random_branch_freq);
    EXPECT_EQ(member0.init_phase_true, defaults.init_phase_true);
    EXPECT_EQ(member0.restart_base, defaults.restart_base);
}

// ---- portfolio --------------------------------------------------------------

/// A small shared CNF family with known answers: pigeonhole (unsat) and a
/// satisfiable chain of implications.
std::unique_ptr<sat_backend> make_pigeonhole_backend(unsigned member, int holes) {
    auto b = std::make_unique<sat_backend>(diversified_options(member),
                                           "php#" + std::to_string(member));
    encode_pigeonhole(b->solver(), holes);
    return b;
}

TEST(portfolio, unsat_answer_matches_single_solver) {
    auto single = make_pigeonhole_backend(0, 5)->check();
    EXPECT_EQ(single.ans, answer::unsat);
    for (int round = 0; round < 3; ++round) {
        portfolio_config cfg;
        cfg.members = 4;
        cfg.threads = 4;
        auto outcome = race([&](unsigned m) { return make_pigeonhole_backend(m, 5); }, cfg);
        EXPECT_EQ(outcome.result.ans, answer::unsat) << "round " << round;
    }
}

TEST(portfolio, sat_answer_deterministic_and_model_valid) {
    // Random-ish satisfiable instance: v0 -> v1 -> ... -> v19, v0 forced.
    auto build = [](sat::solver& s) {
        std::vector<sat::var> v;
        for (int i = 0; i < 20; ++i) v.push_back(s.new_var());
        s.add_clause(sat::mk_lit(v[0]));
        for (int i = 0; i + 1 < 20; ++i)
            s.add_clause(~sat::mk_lit(v[static_cast<std::size_t>(i)]),
                         sat::mk_lit(v[static_cast<std::size_t>(i) + 1]));
        return v;
    };
    portfolio_config cfg;
    cfg.members = 4;
    auto outcome = race(
        [&](unsigned m) {
            auto b = std::make_unique<sat_backend>(diversified_options(m));
            build(b->solver());
            return b;
        },
        cfg);
    ASSERT_EQ(outcome.result.ans, answer::sat);
    // Implication chain from a forced v0: every variable is true in ANY model.
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(outcome.result.sat_model[static_cast<std::size_t>(i)], sat::lbool::l_true);
}

TEST(portfolio, single_member_degenerates) {
    portfolio_config cfg;
    cfg.members = 1;
    auto outcome = race([&](unsigned m) { return make_pigeonhole_backend(m, 4); }, cfg);
    EXPECT_EQ(outcome.result.ans, answer::unsat);
    EXPECT_EQ(outcome.winner, 0u);
}

TEST(portfolio, smt_engine_portfolio_matches_single) {
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 16);
    smt::term y = tm.mk_bv_var("y", 16);
    smt::term commut = tm.mk_distinct(tm.mk_bvadd(x, y),
                                      tm.mk_bvsub(tm.mk_bvadd(tm.mk_bvadd(y, x), y), y));
    smt::term feasible = tm.mk_ult(x, tm.mk_bv_const(16, 100));

    smt_engine single(tm, {.use_cache = false});
    smt_engine racing(tm, {.use_cache = false, .portfolio_members = 4, .threads = 4});

    EXPECT_EQ(solve_portfolio(single, {commut}).ans, answer::unsat);
    EXPECT_EQ(solve_portfolio(racing, {commut}).ans, answer::unsat);

    auto rs = solve_portfolio(single, {feasible});
    auto rp = solve_portfolio(racing, {feasible});
    ASSERT_EQ(rs.ans, answer::sat);
    ASSERT_EQ(rp.ans, answer::sat);
    // Whatever member won, its model satisfies the assertion.
    EXPECT_EQ(eval_model(tm, feasible, rp.model), 1u);
}

// ---- query cache ------------------------------------------------------------

TEST(query_cache, hit_on_identical_query_set) {
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 8);
    smt::term a = tm.mk_ult(x, tm.mk_bv_const(8, 10));
    smt::term b = tm.mk_ult(tm.mk_bv_const(8, 3), x);

    smt_engine engine(tm);
    auto r1 = solve_portfolio(engine, {a, b});
    EXPECT_EQ(r1.ans, answer::sat);
    EXPECT_EQ(engine.stats().cache_hits, 0u);
    // Same set, different order and a duplicate: still a hit.
    auto r2 = solve_portfolio(engine, {b, a, a});
    EXPECT_EQ(engine.stats().cache_hits, 1u);
    EXPECT_EQ(r2.ans, answer::sat);
    EXPECT_EQ(r2.model, r1.model);  // memoized model replayed verbatim
    EXPECT_EQ(engine.stats().solver_runs, 1u);
}

TEST(query_cache, growing_the_assertion_set_misses) {
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 8);
    smt::term a = tm.mk_ult(x, tm.mk_bv_const(8, 10));
    smt::term b = tm.mk_eq(x, tm.mk_bv_const(8, 200));

    smt_engine engine(tm);
    EXPECT_EQ(solve_portfolio(engine, {a}).ans, answer::sat);
    // Superset is a distinct query — no stale hit, and the answer flips.
    EXPECT_EQ(solve_portfolio(engine, {a, b}).ans, answer::unsat);
    EXPECT_EQ(engine.stats().cache_hits, 0u);
}

TEST(query_cache, assumptions_key_separately) {
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 8);
    smt::term a = tm.mk_ult(x, tm.mk_bv_const(8, 10));

    smt_engine engine(tm);
    EXPECT_EQ(solve_portfolio(engine, {a}).ans, answer::sat);
    // Same formula as assertion vs as assumption: different key.
    EXPECT_EQ(solve_portfolio(engine, {}, {a}).ans, answer::sat);
    EXPECT_EQ(engine.stats().cache_hits, 0u);
    EXPECT_EQ(solve_portfolio(engine, {}, {a}).ans, answer::sat);
    EXPECT_EQ(engine.stats().cache_hits, 1u);
}

TEST(query_cache, unsat_results_cache_too) {
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 8);
    smt::term contradiction = tm.mk_and(tm.mk_ult(x, tm.mk_bv_const(8, 4)),
                                        tm.mk_ult(tm.mk_bv_const(8, 9), x));
    smt_engine engine(tm);
    EXPECT_EQ(solve_portfolio(engine, {contradiction}).ans, answer::unsat);
    EXPECT_EQ(solve_portfolio(engine, {contradiction}).ans, answer::unsat);
    EXPECT_EQ(engine.stats().cache_hits, 1u);
    EXPECT_EQ(engine.stats().solver_runs, 1u);
}

TEST(query_cache, clear_invalidates) {
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 8);
    smt::term a = tm.mk_ult(x, tm.mk_bv_const(8, 10));
    smt_engine engine(tm);
    solve_portfolio(engine, {a});
    engine.cache().clear();
    solve_portfolio(engine, {a});
    EXPECT_EQ(engine.stats().cache_hits, 0u);
    EXPECT_EQ(engine.stats().solver_runs, 2u);
}

TEST(query_cache, structural_hash_is_construction_order_independent) {
    // Build the same formula in two managers with different interleaved
    // junk; the structural hash must agree (variables hash by name).
    smt::term_manager tm1;
    smt::term f1 = tm1.mk_ult(tm1.mk_bv_var("x", 8), tm1.mk_bv_const(8, 10));

    smt::term_manager tm2;
    tm2.mk_bv_var("unrelated", 32);
    tm2.mk_bool_var("noise");
    smt::term f2 = tm2.mk_ult(tm2.mk_bv_var("x", 8), tm2.mk_bv_const(8, 10));

    query_cache c1(tm1);
    query_cache c2(tm2);
    EXPECT_EQ(c1.structural_hash(f1), c2.structural_hash(f2));
    // And a genuinely different formula hashes differently.
    smt::term g2 = tm2.mk_ult(tm2.mk_bv_var("x", 8), tm2.mk_bv_const(8, 11));
    EXPECT_NE(c2.structural_hash(f2), c2.structural_hash(g2));
}

// ---- batch ------------------------------------------------------------------

TEST(batch, hundred_independent_qfbv_queries) {
    // 100 independent path-feasibility-shaped queries with known answers:
    // query i asserts x == i and x < 50 — sat iff i < 50.
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 32);
    std::vector<smt_query> queries;
    for (std::uint64_t i = 0; i < 100; ++i) {
        smt_query q;
        q.assertions = {tm.mk_eq(x, tm.mk_bv_const(32, i)),
                        tm.mk_ult(x, tm.mk_bv_const(32, 50))};
        queries.push_back(std::move(q));
    }
    smt_engine engine(tm, {.threads = 4});
    auto results = solve_batch(engine, queries);
    ASSERT_EQ(results.size(), 100u);
    for (std::uint64_t i = 0; i < 100; ++i) {
        if (i < 50) {
            EXPECT_EQ(results[i].ans, answer::sat) << i;
            EXPECT_EQ(eval_model(tm, x, results[i].model), i);
        } else {
            EXPECT_EQ(results[i].ans, answer::unsat) << i;
        }
    }
}

TEST(batch, shares_cache_across_duplicate_queries) {
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 16);
    smt_query q;
    q.assertions = {tm.mk_ult(x, tm.mk_bv_const(16, 7))};
    std::vector<smt_query> queries(32, q);
    smt_engine engine(tm, {.threads = 4});
    auto results = solve_batch(engine, queries);
    for (const auto& r : results) EXPECT_EQ(r.ans, answer::sat);
    // At least one worker solved; the rest hit the shared cache or coalesce
    // onto the in-flight duplicate (scheduling-dependent split between the
    // two), and a re-batch is all hits. Every query is accounted for as
    // exactly one of: solved, cache hit, coalesced.
    EXPECT_GE(engine.stats().solver_runs, 1u);
    auto again = solve_batch(engine, queries);
    EXPECT_EQ(engine.stats().solver_runs, engine.stats().queries - engine.stats().cache_hits -
                                              engine.stats().coalesced);
    for (const auto& r : again) EXPECT_EQ(r.ans, answer::sat);
    // The structural-cache counters nest inside the invariant: every
    // structural hit is a cache hit, every remapped model came from a
    // structural hit, and nothing loads from disk without a cache_path.
    EXPECT_LE(engine.stats().structural_hits, engine.stats().cache_hits);
    EXPECT_LE(engine.stats().remapped_models, engine.stats().structural_hits);
    EXPECT_EQ(engine.stats().persisted_loads, 0u);
    // One manager, one engine: every hit here replays natively.
    EXPECT_EQ(engine.stats().structural_hits, 0u);
}

// ---- engine sessions --------------------------------------------------------

TEST(engine_session, per_session_stats_slice_counts_its_own_work) {
    smt::term_manager tm;
    smt_engine engine(tm, {.threads = 2});
    auto tenant_a = engine.open_session("tenant-a", 2);
    auto tenant_b = engine.open_session("tenant-b");
    EXPECT_EQ(tenant_a->name(), "tenant-a");
    EXPECT_EQ(tenant_a->weight(), 2u);
    EXPECT_EQ(tenant_b->weight(), 1u);

    smt::term x = tm.mk_bv_var("x", 8);
    smt::term q = tm.mk_ult(x, tm.mk_bv_const(8, 9));
    EXPECT_TRUE(tenant_a->solve({{q}, {}, strategy::single()}).is_sat());
    // Same query through the other tenant: a cache hit, accounted to B.
    EXPECT_TRUE(tenant_b->submit({{q}, {}, strategy::single()}).get().is_sat());

    session_stats sa = tenant_a->stats();
    EXPECT_EQ(sa.queries, 1u);
    EXPECT_EQ(sa.completed, 1u);
    EXPECT_EQ(sa.cache_hits, 0u);
    EXPECT_EQ(sa.ok, 1u);
    session_stats sb = tenant_b->stats();
    EXPECT_EQ(sb.queries, 1u);
    EXPECT_EQ(sb.cache_hits, 1u);
    EXPECT_EQ(sb.completed, 1u);
    // The engine-wide counters are the union of the slices.
    EXPECT_EQ(engine.stats().queries, 2u);
    EXPECT_EQ(engine.stats().cache_hits, 1u);
    EXPECT_EQ(engine.stats().solver_runs, 1u);
}

TEST(engine_session, malformed_and_budgeted_statuses_land_in_the_slice) {
    smt::term_manager tm;
    smt_engine engine(tm, {.use_cache = false});
    auto session = engine.open_session("tenant");
    solve_request bad;
    bad.assertions = {smt::term{}};
    EXPECT_EQ(session->submit(std::move(bad)).get().status, solve_status::malformed);

    smt::term a = tm.mk_bv_var("a", 12);
    smt::term b = tm.mk_bv_var("b", 12);
    smt::term hard = tm.mk_distinct(tm.mk_bvmul(a, tm.mk_bvadd(b, b)),
                                    tm.mk_bvadd(tm.mk_bvmul(a, b), tm.mk_bvmul(a, b)));
    strategy budgeted = strategy::single();
    budgeted.conflict_budget = 1;
    backend_result capped = session->solve({{hard}, {}, budgeted});
    EXPECT_EQ(capped.ans, answer::unknown);
    EXPECT_EQ(capped.status, solve_status::over_budget);

    session_stats stats = session->stats();
    EXPECT_EQ(stats.queries, 2u);
    EXPECT_EQ(stats.malformed, 1u);
    EXPECT_EQ(stats.over_budget, 1u);
    EXPECT_EQ(stats.ok, 0u);
}

TEST(engine_session, engines_share_one_external_pool) {
    // The daemon topology: per-tenant term managers and engines over ONE
    // worker pool (engine_config::shared_pool). Destroying an engine must
    // not tear the pool down under the other tenant.
    auto pool = std::make_shared<thread_pool>(2);
    smt::term_manager tm_b;
    engine_config cfg;
    cfg.shared_pool = pool;
    smt_engine engine_b(tm_b, cfg);
    smt::term xb = tm_b.mk_bv_var("x", 8);
    {
        smt::term_manager tm_a;
        smt_engine engine_a(tm_a, cfg);
        smt::term xa = tm_a.mk_bv_var("x", 8);
        query_handle h = engine_a.submit(
            {{tm_a.mk_ult(xa, tm_a.mk_bv_const(8, 5))}, {}, strategy::single()});
        EXPECT_TRUE(h.get().is_sat());
    }
    query_handle h = engine_b.submit(
        {{tm_b.mk_ult(xb, tm_b.mk_bv_const(8, 5))}, {}, strategy::single()});
    EXPECT_TRUE(h.get().is_sat());
    EXPECT_EQ(pool->size(), 2u);
}

// ---- oracle cache -----------------------------------------------------------

TEST(oracle_cache, memoizes_vector_keys) {
    oracle_cache<std::vector<double>, bool, byte_vector_hash> cache;
    int calls = 0;
    auto compute = [&](const std::vector<double>&) {
        ++calls;
        return true;
    };
    EXPECT_TRUE(cache.get_or_compute({1.0, 2.0}, compute));
    EXPECT_TRUE(cache.get_or_compute({1.0, 2.0}, compute));
    EXPECT_TRUE(cache.get_or_compute({2.0, 1.0}, compute));
    EXPECT_EQ(calls, 2);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 2u);
}

// ---- application routing ----------------------------------------------------

const char* modexp_src = R"(
int modexp(int base, int exponent) {
  int result = 1;
  int b = base;
  int i = 0;
  while (i < 4) bound 4 {
    if (exponent & 1) { result = (result * b) % 1000003; }
    b = (b * b) % 1000003;
    exponent = exponent >> 1;
    i = i + 1;
  }
  return result;
}
)";

TEST(application_routing, gametime_batch_extraction_identical_to_sequential) {
    ir::program p = ir::parse_program(modexp_src);
    ir::function f = ir::resolve_static_branches(
        ir::unroll_loops(*p.find_function("modexp")), p.width);
    ir::cfg g = ir::cfg::build(p, f);

    smt::term_manager tm_seq;
    substrate::smt_engine seq_engine(tm_seq);
    gametime::basis_info sequential = gametime::extract_basis_paths(g, seq_engine);

    smt::term_manager tm_par;
    substrate::smt_engine par_engine(tm_par);
    gametime::basis_config cfg;
    cfg.batch_threads = 4;
    gametime::basis_info batched = gametime::extract_basis_paths(g, par_engine, cfg);

    EXPECT_EQ(sequential.paths, batched.paths);
    EXPECT_EQ(sequential.tests, batched.tests);
    EXPECT_EQ(sequential.smt_queries, batched.smt_queries);
    EXPECT_GT(batched.speculative_queries, 0u);
    EXPECT_EQ(sequential.speculative_queries, 0u);
}

TEST(application_routing, gametime_batch_enumeration_limit_matches_sequential) {
    // Batch mode must agree with sequential mode on the enumeration-limit
    // boundary: same basis when the limit suffices, same throw when not.
    ir::program p = ir::parse_program(R"(
        int f(int x) {
          int a = 0;
          if (x > 10) { a = 1; }
          if (x < 5) { a = a + 2; }
          if (x == 7) { a = a + 4; }
          return a;
        }
    )");
    ir::cfg g = ir::cfg::build(p, p.functions[0]);
    for (std::size_t limit = 1; limit <= 8; ++limit) {
        auto run = [&](unsigned threads) -> std::optional<gametime::basis_info> {
            smt::term_manager tm;
            substrate::smt_engine engine(tm);
            gametime::basis_config cfg;
            cfg.enumeration_limit = limit;
            cfg.batch_threads = threads;
            try {
                return gametime::extract_basis_paths(g, engine, cfg);
            } catch (const std::runtime_error&) {
                return std::nullopt;
            }
        };
        auto sequential = run(1);
        auto batched = run(4);
        ASSERT_EQ(sequential.has_value(), batched.has_value()) << "limit " << limit;
        if (sequential) {
            EXPECT_EQ(sequential->paths, batched->paths) << "limit " << limit;
            EXPECT_EQ(sequential->tests, batched->tests) << "limit " << limit;
        }
    }
}

TEST(application_routing, gametime_wcet_recheck_hits_cache) {
    ir::program p = ir::parse_program(modexp_src);
    ir::function f = ir::resolve_static_branches(
        ir::unroll_loops(*p.find_function("modexp")), p.width);
    ir::cfg g = ir::cfg::build(p, f);

    smt::term_manager tm;
    substrate::smt_engine engine(tm);
    gametime::basis_info basis = gametime::extract_basis_paths(g, engine);
    gametime::sarm_platform platform(p, f);
    gametime::timing_model model = gametime::learn_timing_model(basis, platform);
    auto before = engine.stats().cache_hits;
    auto wcet = gametime::predict_wcet(g, model, engine);
    ASSERT_TRUE(wcet.has_value());
    // The predicted longest path is one of the basis paths already proven
    // feasible during extraction — its re-check is a cache hit.
    EXPECT_GT(engine.stats().cache_hits, before);
}

TEST(application_routing, ogis_results_identical_through_substrate) {
    // The P1 interchange benchmark through the default substrate (cache on)
    // and with the cache off must synthesize the same program.
    auto bench = ogis::benchmark_p1_interchange();
    auto cached = ogis::run_benchmark(bench);
    ASSERT_EQ(cached.status, core::loop_status::success);

    auto bench_uncached = ogis::benchmark_p1_interchange();
    bench_uncached.config.engine.use_cache = false;
    auto uncached = ogis::run_benchmark(bench_uncached);
    ASSERT_EQ(uncached.status, core::loop_status::success);

    EXPECT_EQ(cached.program->to_string(bench.config.library),
              uncached.program->to_string(bench.config.library));
    EXPECT_EQ(cached.stats.iterations, uncached.stats.iterations);
}

TEST(application_routing, invgen_portfolio_set_is_inductive) {
    // Stuck latch + two equivalent input-fed latches: constant and
    // equivalence invariants exist and are 1-inductive.
    aig::aig circuit;
    aig::literal in = circuit.add_input();
    aig::literal stuck = circuit.add_latch(false);
    aig::literal l1 = circuit.add_latch(false);
    aig::literal l2 = circuit.add_latch(false);
    circuit.set_latch_next(stuck, stuck);
    circuit.set_latch_next(l1, in);
    circuit.set_latch_next(l2, in);

    auto single = invgen::generate_invariants(circuit, {});

    invgen::invgen_config pcfg;
    pcfg.portfolio_members = 3;
    pcfg.portfolio_threads = 3;
    auto raced = invgen::generate_invariants(circuit, pcfg);

    // Which candidates survive each refinement is answer-determined, and
    // these candidates are genuinely invariant — so the fixpoints coincide.
    EXPECT_FALSE(single.proven.empty());
    EXPECT_FALSE(raced.proven.empty());
    auto to_strings = [](const std::vector<invgen::candidate>& cs) {
        std::set<std::string> out;
        for (const auto& c : cs) out.insert(c.to_string());
        return out;
    };
    EXPECT_EQ(to_strings(single.proven), to_strings(raced.proven));
    // And the stuck-at-0 latch is proven constant through the portfolio.
    EXPECT_EQ(invgen::prove_with_invariants(circuit, aig::negate(stuck), single.proven),
              invgen::prove_with_invariants(circuit, aig::negate(stuck), raced.proven));

    // Racing with learnt-clause sharing between the members changes how the
    // work is split, never what is proven.
    invgen::invgen_config scfg = pcfg;
    scfg.sharing.enabled = true;
    scfg.sharing.deterministic = true;
    auto shared = invgen::generate_invariants(circuit, scfg);
    EXPECT_EQ(to_strings(single.proven), to_strings(shared.proven));
}

TEST(application_routing, invgen_batched_proof_matches_sequential) {
    aig::aig circuit;
    auto a = circuit.add_latch(true);
    auto b = circuit.add_latch(true);
    circuit.set_latch_next(a, b);
    circuit.set_latch_next(b, a);
    auto result = invgen::generate_invariants(circuit, {.simulation_rounds = 2});
    bool sequential = invgen::prove_with_invariants(circuit, a, result.proven);
    bool batched = invgen::prove_with_invariants(circuit, a, result.proven,
                                                 {.batch_threads = 2});
    EXPECT_EQ(sequential, batched);
    EXPECT_TRUE(batched);  // a==true is inductive here
}

}  // namespace
}  // namespace sciduction::substrate
