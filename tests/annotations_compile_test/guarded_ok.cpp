// Positive control for the negative-compile check: the same guarded field
// as guarded_violation.cpp, accessed correctly under its lock. run.cmake
// asserts this translation unit COMPILES under Clang -Werror=thread-safety,
// proving a rejection of the violation TU really is the analysis firing and
// not a broken include path or flag. Not part of any test binary.
#include "substrate/annotations.hpp"

namespace {

class counter_box {
public:
    int read_locked() const {
        sciduction::sd::lock_guard lock(mutex_);
        return value_;
    }
    void write_locked(int v) {
        sciduction::sd::lock_guard lock(mutex_);
        value_ = v;
    }

private:
    mutable sciduction::sd::mutex mutex_;
    int value_ SD_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
    counter_box box;
    box.write_locked(1);
    return box.read_locked();
}
