# Test-time harness for the annotation negative-compile check (registered
# by the top-level CMakeLists under Clang): compiles the positive-control
# TU (must succeed) and the seeded-violation TU (must FAIL with a
# thread-safety diagnostic). `try_compile` is unavailable in `cmake -P`
# script mode, so the harness drives the compiler directly; syntax-only
# keeps it fast and link-free.
#
# Inputs: -DCXX=<clang++ path> -DSRC_DIR=<repo root>

foreach(required CXX SRC_DIR)
    if(NOT DEFINED ${required})
        message(FATAL_ERROR "annotations_compile_test: missing -D${required}=")
    endif()
endforeach()

set(case_dir ${SRC_DIR}/tests/annotations_compile_test)
set(flags -std=c++20 -fsyntax-only -I${SRC_DIR}/src -Wthread-safety -Werror=thread-safety)

execute_process(
    COMMAND ${CXX} ${flags} ${case_dir}/guarded_ok.cpp
    RESULT_VARIABLE ok_rc
    OUTPUT_VARIABLE ok_out
    ERROR_VARIABLE ok_err)
if(NOT ok_rc EQUAL 0)
    message(FATAL_ERROR
        "positive control guarded_ok.cpp failed to compile — the harness "
        "itself is broken (flags/include path), not the annotations:\n"
        "${ok_out}${ok_err}")
endif()

execute_process(
    COMMAND ${CXX} ${flags} ${case_dir}/guarded_violation.cpp
    RESULT_VARIABLE bad_rc
    OUTPUT_VARIABLE bad_out
    ERROR_VARIABLE bad_err)
if(bad_rc EQUAL 0)
    message(FATAL_ERROR
        "guarded_violation.cpp COMPILED: unlocked access to an "
        "SD_GUARDED_BY field was not rejected — the annotation layer has "
        "rotted into no-ops (check SD_THREAD_ANNOTATION_ and the sd:: "
        "wrapper attributes in src/substrate/annotations.hpp)")
endif()
# The rejection must come from the analysis, not an unrelated error.
if(NOT "${bad_out}${bad_err}" MATCHES "thread-safety|guarded_by|guarded by")
    message(FATAL_ERROR
        "guarded_violation.cpp failed for a reason other than the "
        "thread-safety analysis:\n${bad_out}${bad_err}")
endif()

message(STATUS "annotations_compile_test: violation rejected, control accepted")
