// Negative-compile seed: reads and writes an SD_GUARDED_BY field without
// holding its mutex. run.cmake asserts that Clang -Werror=thread-safety
// REJECTS this translation unit — if it ever compiles, the annotation
// layer has rotted into no-ops. Not part of any test binary.
#include "substrate/annotations.hpp"

namespace {

class counter_box {
public:
    // The seeded violations the harness expects the analysis to flag.
    int read_unlocked() const { return value_; }
    void write_unlocked(int v) { value_ = v; }

private:
    mutable sciduction::sd::mutex mutex_;
    int value_ SD_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
    counter_box box;
    box.write_unlocked(1);
    return box.read_unlocked();
}
