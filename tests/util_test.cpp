#include <gtest/gtest.h>

#include "util/histogram.hpp"
#include "util/matrix.hpp"
#include "util/rational.hpp"
#include "util/rng.hpp"

namespace sciduction::util {
namespace {

// ---- rational ---------------------------------------------------------------

TEST(rational, construction_normalizes) {
    rational r(6, 4);
    EXPECT_EQ(r, rational(3, 2));
    EXPECT_EQ(rational(-6, 4), rational(-3, 2));
    EXPECT_EQ(rational(6, -4), rational(-3, 2));  // denominator made positive
    EXPECT_EQ(rational(0, 7), rational(0));
    EXPECT_TRUE(rational(0, 7).is_zero());
}

TEST(rational, zero_denominator_throws) {
    EXPECT_THROW(rational(1, 0), std::domain_error);
}

TEST(rational, arithmetic) {
    rational a(1, 3);
    rational b(1, 6);
    EXPECT_EQ(a + b, rational(1, 2));
    EXPECT_EQ(a - b, rational(1, 6));
    EXPECT_EQ(a * b, rational(1, 18));
    EXPECT_EQ(a / b, rational(2));
    EXPECT_EQ(-a, rational(-1, 3));
    EXPECT_EQ(a.abs(), a);
    EXPECT_EQ((-a).abs(), a);
}

TEST(rational, comparisons) {
    EXPECT_LT(rational(1, 3), rational(1, 2));
    EXPECT_LT(rational(-1, 2), rational(-1, 3));
    EXPECT_GE(rational(2, 4), rational(1, 2));
    EXPECT_GT(rational(0), rational(-5));
}

TEST(rational, to_int64_and_double) {
    EXPECT_EQ(rational(10, 2).to_int64(), 5);
    EXPECT_THROW((void)rational(1, 2).to_int64(), std::domain_error);
    EXPECT_DOUBLE_EQ(rational(1, 2).to_double(), 0.5);
    EXPECT_EQ(rational(7, 2).to_string(), "7/2");
    EXPECT_EQ(rational(-4).to_string(), "-4");
}

TEST(rational, inverse_of_zero_throws) {
    EXPECT_THROW((void)rational(0).inverse(), std::domain_error);
}

TEST(rational, overflow_detected) {
    rational big(INT64_MAX);
    rational r = big * big;  // fits in 128 bits
    EXPECT_THROW(r * r, rational_overflow_error);
}

// Property: field axioms hold on random small rationals.
class rational_property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(rational_property, field_axioms) {
    rng r(GetParam());
    for (int i = 0; i < 200; ++i) {
        auto pick = [&] {
            return rational(static_cast<std::int64_t>(r.next_below(2001)) - 1000,
                            static_cast<std::int64_t>(r.next_below(50)) + 1);
        };
        rational a = pick();
        rational b = pick();
        rational c = pick();
        EXPECT_EQ(a + b, b + a);
        EXPECT_EQ(a * b, b * a);
        EXPECT_EQ((a + b) + c, a + (b + c));
        EXPECT_EQ(a * (b + c), a * b + a * c);
        EXPECT_EQ(a - a, rational(0));
        if (!b.is_zero()) { EXPECT_EQ((a / b) * b, a); }
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, rational_property, ::testing::Values(1, 2, 3, 4, 5));

// ---- matrix -------------------------------------------------------------------

TEST(matrix, rank_and_transpose) {
    rmatrix m = rmatrix::from_rows({{rational(1), rational(0), rational(1)},
                                    {rational(0), rational(1), rational(1)},
                                    {rational(1), rational(1), rational(2)}});
    EXPECT_EQ(m.rank(), 2u);  // row3 = row1 + row2
    rmatrix t = m.transpose();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.at(2, 0), rational(1));
    EXPECT_EQ(t.rank(), 2u);
}

TEST(matrix, solve_square) {
    rmatrix a = rmatrix::from_rows({{rational(2), rational(1)}, {rational(1), rational(3)}});
    auto x = solve_square(a, {rational(5), rational(10)});
    ASSERT_TRUE(x.has_value());
    EXPECT_EQ((*x)[0], rational(1));
    EXPECT_EQ((*x)[1], rational(3));
}

TEST(matrix, solve_singular_returns_nullopt) {
    rmatrix a = rmatrix::from_rows({{rational(1), rational(2)}, {rational(2), rational(4)}});
    EXPECT_FALSE(solve_square(a, {rational(1), rational(2)}).has_value());
}

TEST(matrix, min_norm_solution_solves_system) {
    // Underdetermined: 2 equations, 3 unknowns.
    rmatrix b = rmatrix::from_rows({{rational(1), rational(1), rational(0)},
                                    {rational(0), rational(1), rational(1)}});
    rvector rhs{rational(3), rational(5)};
    auto w = min_norm_solution(b, rhs);
    ASSERT_TRUE(w.has_value());
    rvector back = b.multiply(*w);
    EXPECT_EQ(back[0], rational(3));
    EXPECT_EQ(back[1], rational(5));
}

TEST(matrix, basis_coordinates_member_and_nonmember) {
    rmatrix b = rmatrix::from_rows({{rational(1), rational(0), rational(1)},
                                    {rational(0), rational(1), rational(1)}});
    // x = 2*row0 - row1
    rvector x{rational(2), rational(-1), rational(1)};
    auto c = basis_coordinates(b, x);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ((*c)[0], rational(2));
    EXPECT_EQ((*c)[1], rational(-1));
    // Not in the span:
    EXPECT_FALSE(basis_coordinates(b, {rational(1), rational(1), rational(1)}).has_value());
}

TEST(matrix, echelon_basis_incremental) {
    echelon_basis eb(3);
    EXPECT_TRUE(eb.insert({rational(1), rational(1), rational(0)}));
    EXPECT_TRUE(eb.insert({rational(0), rational(1), rational(1)}));
    // Dependent: sum of the two.
    EXPECT_FALSE(eb.is_independent({rational(1), rational(2), rational(1)}));
    EXPECT_FALSE(eb.insert({rational(1), rational(2), rational(1)}));
    EXPECT_TRUE(eb.insert({rational(0), rational(0), rational(5)}));
    EXPECT_EQ(eb.rank(), 3u);
    // Everything is dependent at full rank.
    EXPECT_FALSE(eb.is_independent({rational(7), rational(-2), rational(13)}));
}

// Property: rank of random 0/1 matrices matches a double-precision
// Gram-Schmidt estimate on well-conditioned instances (cross-check).
class matrix_property : public ::testing::TestWithParam<int> {};

TEST_P(matrix_property, insert_consistent_with_rank) {
    rng r(static_cast<std::uint64_t>(GetParam()));
    for (int iter = 0; iter < 20; ++iter) {
        std::size_t dim = 2 + r.next_below(5);
        std::size_t rows = 1 + r.next_below(7);
        std::vector<rvector> rws;
        for (std::size_t i = 0; i < rows; ++i) {
            rvector v(dim);
            for (auto& x : v) x = rational(static_cast<std::int64_t>(r.next_below(2)));
            rws.push_back(v);
        }
        rmatrix m = rmatrix::from_rows(rws);
        echelon_basis eb(dim);
        std::size_t inserted = 0;
        for (const auto& v : rws)
            if (eb.insert(v)) ++inserted;
        EXPECT_EQ(inserted, m.rank());
        EXPECT_EQ(eb.rank(), m.rank());
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, matrix_property, ::testing::Range(10, 15));

// ---- rng ------------------------------------------------------------------------

TEST(rng, deterministic_per_seed) {
    rng a(42);
    rng b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
    rng c(43);
    bool all_same = true;
    rng a2(42);
    for (int i = 0; i < 10; ++i) all_same = all_same && (a2.next_u64() == c.next_u64());
    EXPECT_FALSE(all_same);
}

TEST(rng, next_below_in_range) {
    rng r(7);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(rng, next_double_unit_interval) {
    rng r(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double d = r.next_double();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);  // crude uniformity check
}

// ---- histogram ----------------------------------------------------------------

TEST(histogram, binning) {
    histogram h(10);
    h.add(0);
    h.add(9);
    h.add(10);
    h.add(25, 3);
    EXPECT_EQ(h.total(), 6);
    EXPECT_EQ(h.count_at(0), 2);
    EXPECT_EQ(h.count_at(10), 1);
    EXPECT_EQ(h.count_at(20), 3);
    EXPECT_EQ(h.count_at(30), 0);
}

TEST(histogram, tv_distance_identical_zero) {
    histogram a(5);
    histogram b(5);
    for (int i = 0; i < 50; ++i) {
        a.add(i % 20);
        b.add(i % 20);
    }
    EXPECT_DOUBLE_EQ(a.total_variation_distance(b), 0.0);
}

TEST(histogram, tv_distance_disjoint_one) {
    histogram a(5);
    histogram b(5);
    a.add(0, 10);
    b.add(100, 10);
    EXPECT_DOUBLE_EQ(a.total_variation_distance(b), 1.0);
}

TEST(histogram, ascii_render_contains_counts) {
    histogram h(10);
    h.add(5, 4);
    std::string s = h.to_ascii();
    EXPECT_NE(s.find("0..9"), std::string::npos);
    EXPECT_NE(s.find("4"), std::string::npos);
}

}  // namespace
}  // namespace sciduction::util
