#include <gtest/gtest.h>

#include "aig/aig.hpp"
#include "util/rng.hpp"

namespace sciduction::aig {
namespace {

TEST(literals, encoding) {
    EXPECT_EQ(var_of(mk_literal(3)), 3u);
    EXPECT_FALSE(negated(mk_literal(3)));
    EXPECT_TRUE(negated(negate(mk_literal(3))));
    EXPECT_EQ(negate(negate(mk_literal(5, true))), mk_literal(5, true));
    EXPECT_EQ(lit_true, negate(lit_false));
}

TEST(aig_graph, folding_and_strash) {
    aig g;
    literal a = g.add_input();
    literal b = g.add_input();
    EXPECT_EQ(g.add_and(a, lit_false), lit_false);
    EXPECT_EQ(g.add_and(a, lit_true), a);
    EXPECT_EQ(g.add_and(a, a), a);
    EXPECT_EQ(g.add_and(a, negate(a)), lit_false);
    literal ab1 = g.add_and(a, b);
    literal ab2 = g.add_and(b, a);  // commuted: structurally hashed
    EXPECT_EQ(ab1, ab2);
    EXPECT_EQ(g.num_ands(), 1u);
}

TEST(aig_graph, ordering_constraints) {
    aig g;
    g.add_input();
    g.add_latch();
    EXPECT_THROW(g.add_input(), std::logic_error);  // inputs before latches
    literal x = g.add_and(g.input_literal(0), g.latch_literal(0));
    (void)x;
    EXPECT_THROW(g.add_latch(), std::logic_error);  // latches before ANDs
}

TEST(simulation, xor_truth_table) {
    aig g;
    literal a = g.add_input();
    literal b = g.add_input();
    literal x = g.add_xor(a, b);
    // Patterns: a = 0101..., b = 0011...
    auto values = g.simulate_step({}, {0x5555555555555555ULL, 0x3333333333333333ULL});
    std::uint64_t got = aig::value_of(values, x);
    EXPECT_EQ(got, 0x5555555555555555ULL ^ 0x3333333333333333ULL);
}

TEST(simulation, three_bit_counter) {
    // Counter: b0' = !b0; b1' = b1 ^ b0; b2' = b2 ^ (b1 & b0).
    aig g;
    literal b0 = g.add_latch(false);
    literal b1 = g.add_latch(false);
    literal b2 = g.add_latch(false);
    g.set_latch_next(b0, negate(b0));
    g.set_latch_next(b1, g.add_xor(b1, b0));
    g.set_latch_next(b2, g.add_xor(b2, g.add_and(b1, b0)));
    auto st = g.initial_state();
    for (int step = 1; step <= 10; ++step) {
        auto values = g.simulate_step(st, {});
        st = g.next_state(values);
        unsigned count = ((st[2] & 1) << 2) | ((st[1] & 1) << 1) | (st[0] & 1);
        EXPECT_EQ(count, static_cast<unsigned>(step % 8)) << "step " << step;
    }
}

TEST(cnf_export, instantiation_matches_simulation) {
    // Random combinational circuit: force inputs in SAT, compare every node
    // against 64-way simulation.
    util::rng r(31);
    for (int iter = 0; iter < 10; ++iter) {
        aig g;
        std::vector<literal> pool;
        for (int i = 0; i < 4; ++i) pool.push_back(g.add_input());
        for (int i = 0; i < 12; ++i) {
            literal a = pool[r.next_below(pool.size())];
            literal b = pool[r.next_below(pool.size())];
            if (r.next_bool()) a = negate(a);
            if (r.next_bool()) b = negate(b);
            pool.push_back(g.add_and(a, b));
        }
        std::vector<std::uint64_t> input_words(4);
        for (auto& w : input_words) w = r.next_u64();
        auto sim = g.simulate_step({}, input_words);

        sat::solver solver;
        sat::gate_encoder gates(solver);
        std::vector<sat::lit> inputs;
        for (int i = 0; i < 4; ++i) inputs.push_back(gates.fresh());
        auto frame = g.instantiate(gates, {}, inputs);
        // Check lane 17 of the simulation.
        const int lane = 17;
        for (int i = 0; i < 4; ++i) {
            bool v = ((input_words[static_cast<std::size_t>(i)] >> lane) & 1) != 0;
            solver.add_clause(v ? inputs[static_cast<std::size_t>(i)]
                                : ~inputs[static_cast<std::size_t>(i)]);
        }
        ASSERT_EQ(solver.solve(), sat::solve_result::sat);
        for (literal node : pool) {
            bool sim_val = ((aig::value_of(sim, node) >> lane) & 1) != 0;
            bool sat_val = solver.model_lit(aig::sat_literal(frame, node));
            ASSERT_EQ(sat_val, sim_val) << "node " << node << " iter " << iter;
        }
    }
}

TEST(cnf_export, sequential_unrolling) {
    // Toggle flip-flop: after an odd number of frames the latch is high.
    aig g;
    literal t = g.add_latch(false);
    g.set_latch_next(t, negate(t));
    sat::solver solver;
    sat::gate_encoder gates(solver);
    std::vector<sat::lit> state{gates.constant(g.latch_init(0))};
    for (int frame = 0; frame < 5; ++frame) {
        auto f = g.instantiate(gates, state, {});
        state = {aig::sat_literal(f, g.latch_next(0))};
    }
    solver.add_clause(state[0]);  // after 5 toggles: must be 1
    EXPECT_EQ(solver.solve(), sat::solve_result::sat);
    solver.add_clause(~state[0]);
    EXPECT_EQ(solver.solve(), sat::solve_result::unsat);
}

}  // namespace
}  // namespace sciduction::aig
