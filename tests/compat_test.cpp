// The [[deprecated]] compat shims (substrate/compat.hpp): the legacy
// check/check_batch/check_async/check_sharded entry points must keep
// behaving like their submit/solve implementations. This is deliberately
// the ONLY in-tree code that calls them — tools/sciduction_lint.py
// enforces that compat.hpp is included from tests alone.
#include <gtest/gtest.h>

#include "substrate/compat.hpp"

// The whole point of this file is to call deprecated functions.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace sciduction::substrate {
namespace {

smt_query ult_query(smt::term_manager& tm, std::uint64_t bound) {
    smt::term x = tm.mk_bv_var("x", 8);
    return {{tm.mk_ult(x, tm.mk_bv_const(8, bound))}, {}};
}

TEST(compat, check_matches_solve) {
    smt::term_manager tm;
    smt_engine engine(tm);
    smt_query q = ult_query(tm, 10);
    backend_result r = compat::check(engine, q);
    EXPECT_EQ(r.ans, answer::sat);
    // The assertions+assumptions overload reaches the same entry.
    EXPECT_EQ(compat::check(engine, q.assertions).ans, answer::sat);
    EXPECT_GE(engine.stats().cache_hits, 1u);
}

TEST(compat, check_batch_results_in_query_order) {
    smt::term_manager tm;
    smt_engine engine(tm);
    smt::term x = tm.mk_bv_var("x", 8);
    smt::term sat_t = tm.mk_ult(x, tm.mk_bv_const(8, 10));
    smt::term unsat_t = tm.mk_and(sat_t, tm.mk_ult(tm.mk_bv_const(8, 20), x));
    std::vector<smt_query> queries = {{{sat_t}, {}}, {{unsat_t}, {}}};
    std::vector<backend_result> results = compat::check_batch(engine, queries);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].ans, answer::sat);
    EXPECT_EQ(results[1].ans, answer::unsat);
}

TEST(compat, check_async_future_resolves) {
    smt::term_manager tm;
    smt_engine engine(tm, {.threads = 2});
    smt_query q = ult_query(tm, 5);
    std::shared_future<backend_result> fut = compat::check_async(engine, q);
    EXPECT_EQ(fut.get().ans, answer::sat);
}

TEST(compat, check_sharded_fills_stats_out_param) {
    smt::term_manager tm;
    engine_config cfg;
    cfg.shard_depth = 2;
    cfg.threads = 2;
    smt_engine engine(tm, cfg);
    smt_query q = ult_query(tm, 1);  // x < 1: sat (x = 0)
    shard_stats stats;
    backend_result r = compat::check_sharded(engine, q, &stats);
    EXPECT_EQ(r.ans, answer::sat);
    EXPECT_GT(stats.cubes, 0u);
}

}  // namespace
}  // namespace sciduction::substrate
