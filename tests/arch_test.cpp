#include <gtest/gtest.h>

#include "arch/machine.hpp"
#include "ir/interp.hpp"
#include "ir/parser.hpp"
#include "ir/transform.hpp"
#include "util/rng.hpp"

namespace sciduction::arch {
namespace {

// ---- cache model -----------------------------------------------------------

TEST(cache_model, miss_then_hit) {
    cache_config cfg{4, 1, 16, 1, 10};
    cache c(cfg);
    EXPECT_EQ(c.access(0x100), 10u);  // cold miss
    EXPECT_EQ(c.access(0x104), 1u);   // same line: hit
    EXPECT_EQ(c.access(0x100), 1u);
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_EQ(c.hits(), 2u);
}

TEST(cache_model, direct_mapped_conflict) {
    cache_config cfg{4, 1, 16, 1, 10};
    cache c(cfg);
    // 4 sets * 16B = 64B stride aliases to the same set.
    c.access(0x000);
    c.access(0x040);            // evicts 0x000
    EXPECT_EQ(c.access(0x000), 10u);  // miss again
}

TEST(cache_model, lru_within_set) {
    cache_config cfg{2, 2, 16, 1, 10};
    cache c(cfg);
    // Three lines mapping to set 0 (stride 32B): A, B, A, C -> B evicted.
    c.access(0x000);            // A miss
    c.access(0x020);            // B miss
    EXPECT_EQ(c.access(0x000), 1u);   // A hit (refreshes LRU)
    c.access(0x040);            // C miss, evicts B
    EXPECT_EQ(c.access(0x000), 1u);   // A still resident
    EXPECT_EQ(c.access(0x020), 10u);  // B was evicted
}

TEST(cache_model, flush_and_randomize) {
    cache_config cfg{8, 2, 16, 1, 12};
    cache c(cfg);
    c.access(0x123);
    c.flush();
    EXPECT_EQ(c.access(0x123), 12u);  // cold again
    util::rng r1(5);
    util::rng r2(5);
    cache a(cfg);
    cache b(cfg);
    a.randomize(r1, 0x1000, 0.7);
    b.randomize(r2, 0x1000, 0.7);
    // Same seed, same starting state: identical access outcomes.
    for (std::uint64_t addr = 0; addr < 0x400; addr += 36)
        EXPECT_EQ(a.access(addr), b.access(addr));
}

// ---- codegen + machine: functional equivalence with the interpreter ------------

void expect_machine_matches_interpreter(const std::string& src, const std::string& fn,
                                        unsigned num_args, std::uint64_t seed,
                                        int trials = 150) {
    ir::program p = ir::parse_program(src);
    compiled_function cf = compile_function(p, *p.find_function(fn));
    machine mach(cf);
    util::rng r(seed);
    for (int t = 0; t < trials; ++t) {
        std::vector<std::uint64_t> args;
        for (unsigned i = 0; i < num_args; ++i) args.push_back(r.next_u64() & 0xffffffffULL);
        auto want = ir::interpret(p, fn, args).return_value;
        auto got = mach.run_cold(args);
        ASSERT_EQ(got.return_value, want) << fn << " trial " << t;
    }
}

TEST(machine, arithmetic_and_logic) {
    expect_machine_matches_interpreter(R"(
        int f(int x, int y) {
          int a = x + y * 3 - (x / (y | 1));
          int b = (x ^ y) & (x | 0xFF);
          int c = (x << 3) + (y >> 2) + (x % (y | 1));
          return a + b + c + (x < y) + (x >= y) + (x == y) + (x != y);
        }
    )", "f", 2, 101);
}

TEST(machine, control_flow) {
    expect_machine_matches_interpreter(R"(
        int f(int x, int y) {
          int acc = 0;
          if (x > y) { acc = 1; } else { if (x == y) { acc = 2; } else { acc = 3; } }
          int i = 0;
          while (i < (x & 7)) {
            acc += i * y;
            i += 1;
          }
          acc += x && y;
          acc += x || y;
          acc += !x;
          return acc ;
        }
    )", "f", 2, 102);
}

TEST(machine, ternary_and_unary) {
    expect_machine_matches_interpreter(
        "int f(int x, int y) { return (x < y ? ~x : -y) + (x > 100 ? 1 : 2); }", "f", 2, 103);
}

TEST(machine, break_in_loop) {
    expect_machine_matches_interpreter(R"(
        int f(int n) {
          int i = 0;
          while (1) {
            if (i >= (n & 15)) { break; }
            i += 1;
          }
          return i;
        }
    )", "f", 1, 104);
}

TEST(machine, arrays_and_globals) {
    expect_machine_matches_interpreter(R"(
        int table[8] = {5, 9, 2, 7, 1, 8, 3, 6};
        int sum = 0;
        int f(int x) {
          int i = 0;
          while (i < 8) {
            if (table[i] > (x & 7)) { sum += table[i]; }
            table[i] = table[i] + 1;
            i += 1;
          }
          return sum;
        }
    )", "f", 1, 105);
}

TEST(machine, runaway_execution_guarded) {
    ir::program p = ir::parse_program("int f() { while (1) { } return 0; }");
    compiled_function cf = compile_function(p, p.functions[0]);
    machine mach(cf);
    machine_state st = machine_state::cold(mach.config());
    EXPECT_THROW(mach.run({}, st, 10000), std::runtime_error);
}

// ---- timing behaviour ---------------------------------------------------------

TEST(timing, division_costs_more_than_addition) {
    ir::program padd = ir::parse_program("int f(int x) { return x + x + x + x; }");
    ir::program pdiv = ir::parse_program("int f(int x) { return x / 3 / 5 / 7 / 9; }");
    compiled_function cadd = compile_function(padd, padd.functions[0]);
    compiled_function cdiv = compile_function(pdiv, pdiv.functions[0]);
    machine m1(cadd);
    machine m2(cdiv);
    EXPECT_GT(m2.run_cold({1000}).cycles, m1.run_cold({1000}).cycles + 100);
}

TEST(timing, warm_cache_faster_than_cold) {
    ir::program p = ir::parse_program(R"(
        int buf[32];
        int f(int x) {
          int acc = 0;
          int i = 0;
          while (i < 32) {
            acc += buf[i] + x;
            i += 1;
          }
          return acc;
        }
    )");
    compiled_function cf = compile_function(p, p.functions[0]);
    machine mach(cf);
    machine_state st = machine_state::cold(mach.config());
    auto cold = mach.run({1}, st);
    auto warm = mach.run({1}, st);  // same state: caches now hold everything
    EXPECT_GT(cold.cycles, warm.cycles);
    EXPECT_EQ(cold.return_value, warm.return_value);
}

TEST(timing, fig4_toy_cache_path_dependence) {
    // Paper Fig. 4: the final load's latency depends on the path taken.
    // On the flag==0 path the earlier (*x)++ brings x's cell into the
    // cache; on the flag!=0 path the final *x += 2 misses from cold.
    ir::program p = ir::parse_program(R"(
        int xcell = 7;
        int f(int flag) {
          if (!flag) {
            flag = 1;
            xcell = xcell + 1;
          }
          xcell = xcell + 2;
          return xcell;
        }
    )");
    compiled_function cf = compile_function(p, p.functions[0]);
    machine mach(cf);
    auto through_loop = mach.run_cold({0});
    auto direct = mach.run_cold({1});
    // The loop path executes more instructions yet its *final* store hits;
    // check overall path-dependent timing exists and is deterministic.
    EXPECT_NE(through_loop.cycles, direct.cycles);
    EXPECT_EQ(mach.run_cold({0}).cycles, through_loop.cycles);
    EXPECT_EQ(mach.run_cold({1}).cycles, direct.cycles);
}

TEST(timing, environment_state_changes_timing_not_result) {
    ir::program p = ir::parse_program(R"(
        int buf[16];
        int f(int x) {
          int acc = x;
          int i = 0;
          while (i < 16) { acc += buf[i]; i += 1; }
          return acc;
        }
    )");
    compiled_function cf = compile_function(p, p.functions[0]);
    machine mach(cf);
    util::rng r(7);
    auto cold = mach.run_cold({5});
    bool timing_varied = false;
    for (int t = 0; t < 30; ++t) {
        machine_state st = machine_state::random(mach.config(), r, 0.9);
        auto run = mach.run({5}, st);
        EXPECT_EQ(run.return_value, cold.return_value);
        timing_varied = timing_varied || run.cycles != cold.cycles;
    }
    EXPECT_TRUE(timing_varied);  // the state dimension is real (paper Sec. 3.1)
}

// Property: compiled unrolled+resolved code agrees with the interpreter for
// the GameTime pipeline's exact input form.
class codegen_property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(codegen_property, unrolled_resolved_matches) {
    ir::program p = ir::parse_program(R"(
        int f(int x, int y) {
          int acc = 1;
          int i = 0;
          while (i < 6) bound 6 {
            if ((x >> i) & 1) { acc = (acc * (y | 1)) % 65521; }
            i = i + 1;
          }
          return acc;
        }
    )");
    ir::function rf = ir::resolve_static_branches(ir::unroll_loops(p.functions[0]), p.width);
    compiled_function cf = compile_function(p, rf);
    machine mach(cf);
    util::rng r(GetParam());
    for (int t = 0; t < 100; ++t) {
        std::uint64_t x = r.next_u64() & 0x3f;
        std::uint64_t y = r.next_u64() & 0xffffffffULL;
        ASSERT_EQ(mach.run_cold({x, y}).return_value,
                  ir::interpret(p, "f", {x, y}).return_value);
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, codegen_property, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace sciduction::arch
