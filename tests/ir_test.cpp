#include <gtest/gtest.h>

#include "ir/interp.hpp"
#include "ir/parser.hpp"
#include "ir/transform.hpp"
#include "util/rng.hpp"

namespace sciduction::ir {
namespace {

// ---- lexer -----------------------------------------------------------------

TEST(lexer, tokens_and_positions) {
    auto toks = tokenize("int x = 0x1F; // comment\nwhile");
    ASSERT_GE(toks.size(), 6u);
    EXPECT_EQ(toks[0].kind, token_kind::kw_int);
    EXPECT_EQ(toks[1].kind, token_kind::identifier);
    EXPECT_EQ(toks[1].text, "x");
    EXPECT_EQ(toks[2].kind, token_kind::assign);
    EXPECT_EQ(toks[3].kind, token_kind::number);
    EXPECT_EQ(toks[3].value, 0x1Fu);
    EXPECT_EQ(toks[5].kind, token_kind::kw_while);
    EXPECT_EQ(toks[5].line, 2);
}

TEST(lexer, multi_char_operators) {
    auto toks = tokenize("<<= >>= << >> <= >= == != && || += ^=");
    std::vector<token_kind> want{
        token_kind::shl_assign, token_kind::shr_assign, token_kind::shl, token_kind::shr,
        token_kind::le,         token_kind::ge,         token_kind::eq_eq, token_kind::bang_eq,
        token_kind::amp_amp,    token_kind::pipe_pipe,  token_kind::plus_assign,
        token_kind::caret_assign};
    for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(toks[i].kind, want[i]) << i;
}

TEST(lexer, block_comments_and_errors) {
    EXPECT_EQ(tokenize("/* multi \n line */ 42")[0].value, 42u);
    EXPECT_THROW(tokenize("/* unterminated"), parse_error);
    EXPECT_THROW(tokenize("@"), parse_error);
    EXPECT_THROW(tokenize("0x"), parse_error);
}

// ---- parser -----------------------------------------------------------------

TEST(parser, precedence_matches_c) {
    // == binds tighter than ^ in C: a == b ^ c is (a == b) ^ c.
    std::unordered_map<std::string, std::uint64_t> env{{"a", 5}, {"b", 5}, {"c", 6}};
    EXPECT_EQ(eval_expr(parse_expression("a == b ^ c"), 32, env), 1u ^ 6u);
    EXPECT_EQ(eval_expr(parse_expression("a == (b ^ c)"), 32, env), 0u);
    EXPECT_EQ(eval_expr(parse_expression("1 + 2 * 3"), 32, env), 7u);
    EXPECT_EQ(eval_expr(parse_expression("(1 + 2) * 3"), 32, env), 9u);
    EXPECT_EQ(eval_expr(parse_expression("1 << 2 + 1"), 32, env), 8u);  // + before <<
    EXPECT_EQ(eval_expr(parse_expression("7 & 3 | 8"), 32, env), (7u & 3u) | 8u);
}

TEST(parser, ternary_and_unary) {
    std::unordered_map<std::string, std::uint64_t> env{{"x", 10}};
    EXPECT_EQ(eval_expr(parse_expression("x > 5 ? x : 0 - x"), 32, env), 10u);
    EXPECT_EQ(eval_expr(parse_expression("!x"), 32, env), 0u);
    EXPECT_EQ(eval_expr(parse_expression("~0"), 8, env), 0xffu);
    EXPECT_EQ(eval_expr(parse_expression("-1"), 8, env), 0xffu);
    // Right associativity of nested ternary.
    EXPECT_EQ(eval_expr(parse_expression("0 ? 1 : 0 ? 2 : 3"), 32, env), 3u);
}

TEST(parser, program_structure) {
    program p = parse_program(R"(
        int g = 7;
        int arr[4] = {1, 2, 3};
        int f(int a, int b) {
          int t = a + b;
          return t;
        }
    )");
    ASSERT_NE(p.find_global("g"), nullptr);
    EXPECT_EQ(p.find_global("g")->init[0], 7u);
    const global_decl* arr = p.find_global("arr");
    ASSERT_NE(arr, nullptr);
    EXPECT_TRUE(arr->is_array);
    EXPECT_EQ(arr->size, 4u);
    EXPECT_EQ(arr->init[3], 0u);  // default-filled
    const function* f = p.find_function("f");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->params.size(), 2u);
    EXPECT_EQ(f->body.size(), 2u);
}

TEST(parser, while_bound_annotation) {
    program p = parse_program("int f() { int i = 0; while (i < 4) bound 4 { i = i + 1; } return i; }");
    const stmt& w = p.functions[0].body[1];
    ASSERT_EQ(w.k, stmt::kind::while_stmt);
    ASSERT_TRUE(w.bound.has_value());
    EXPECT_EQ(*w.bound, 4u);
}

TEST(parser, compound_assignment_desugars) {
    program p = parse_program("int f(int x) { x += 3; x <<= 1; return x; }");
    EXPECT_EQ(interpret(p, "f", {5}).return_value, 16u);
}

TEST(parser, syntax_errors) {
    EXPECT_THROW(parse_program("int f( { return 0; }"), parse_error);
    EXPECT_THROW(parse_program("int f() { return 0 }"), parse_error);
    EXPECT_THROW(parse_program("int f() { if x { } return 0; }"), parse_error);
    EXPECT_THROW(parse_program("int x[0];"), parse_error);
    EXPECT_THROW(parse_program("int x[2] = {1,2,3};"), parse_error);
    EXPECT_THROW(parse_expression("1 +"), parse_error);
}

// ---- interpreter --------------------------------------------------------------

TEST(interp, modexp_reference) {
    program p = parse_program(R"(
        int modexp(int base, int exponent) {
          int result = 1;
          int b = base;
          int i = 0;
          while (i < 8) bound 8 {
            if (exponent & 1) { result = (result * b) % 1000003; }
            b = (b * b) % 1000003;
            exponent = exponent >> 1;
            i = i + 1;
          }
          return result;
        }
    )");
    // Reference with the same 32-bit wrap-around semantics.
    auto ref = [](std::uint64_t base, std::uint64_t e) {
        const std::uint64_t m = 0xffffffffULL;
        std::uint64_t result = 1;
        std::uint64_t b = base & m;
        for (int i = 0; i < 8; ++i) {
            if (e & 1) result = ((result * b) & m) % 1000003;
            b = ((b * b) & m) % 1000003;
            e >>= 1;
        }
        return result;
    };
    util::rng r(3);
    for (int t = 0; t < 100; ++t) {
        std::uint64_t base = r.next_below(1 << 20);
        std::uint64_t e = r.next_below(256);
        EXPECT_EQ(interpret(p, "modexp", {base, e}).return_value, ref(base, e));
    }
}

TEST(interp, while_break_and_logic) {
    program p = parse_program(R"(
        int f(int n) {
          int count = 0;
          while (1) {
            if (count >= n || count >= 10) { break; }
            count += 1;
          }
          return count;
        }
    )");
    EXPECT_EQ(interpret(p, "f", {4}).return_value, 4u);
    EXPECT_EQ(interpret(p, "f", {100}).return_value, 10u);
}

TEST(interp, arrays_and_globals) {
    program p = parse_program(R"(
        int acc = 0;
        int buf[8];
        int f(int n) {
          int i = 0;
          while (i < n) bound 8 {
            buf[i] = i * i;
            i += 1;
          }
          i = 0;
          while (i < n) bound 8 {
            acc += buf[i];
            i += 1;
          }
          return acc;
        }
    )");
    auto r = interpret(p, "f", {4});
    EXPECT_EQ(r.return_value, 0u + 1 + 4 + 9);
    EXPECT_EQ(r.state.scalars.at("acc"), 14u);
    EXPECT_EQ(r.state.arrays.at("buf")[3], 9u);
}

TEST(interp, out_of_bounds_throws) {
    program p = parse_program("int a[2]; int f(int i) { return a[i]; }");
    EXPECT_EQ(interpret(p, "f", {1}).return_value, 0u);
    EXPECT_THROW(interpret(p, "f", {2}), std::runtime_error);
}

TEST(interp, step_budget_guards_infinite_loops) {
    program p = parse_program("int f() { while (1) { } return 0; }");
    EXPECT_THROW(interpret(p, "f", {}, 1000), std::runtime_error);
}

TEST(interp, signed_comparisons_and_division) {
    program p = parse_program("int f(int x, int y) { return (x < y) + (x / y) * 2; }");
    // 0xffffffff is -1 signed: -1 < 1 is true; unsigned division: huge / 1.
    EXPECT_EQ(interpret(p, "f", {0xffffffffULL, 1}).return_value,
              (1 + 0xffffffffULL * 2) & 0xffffffffULL);
    // Division by zero: SMT-LIB all-ones.
    program q = parse_program("int f(int x) { return x / 0; }");
    EXPECT_EQ(interpret(q, "f", {5}).return_value, 0xffffffffULL);
}

TEST(interp, nested_calls) {
    program p = parse_program(R"(
        int square(int x) { int y = x * x; return y; }
        int f(int a) {
          int s = 0;
          s = square(a);
          int t = 0;
          t = square(s);
          return t;
        }
    )");
    EXPECT_EQ(interpret(p, "f", {3}).return_value, 81u);
    EXPECT_THROW(interpret(p, "missing", {1}), std::runtime_error);
    EXPECT_THROW(interpret(p, "f", {1, 2}), std::runtime_error);
}

// ---- transforms -----------------------------------------------------------------

TEST(transform, unroll_preserves_semantics) {
    program p = parse_program(R"(
        int f(int n) {
          int acc = 0;
          int i = 0;
          while (i < n) bound 6 {
            acc += i * 2 + 1;
            i += 1;
          }
          return acc;
        }
    )");
    function u = unroll_loops(p.functions[0]);
    EXPECT_TRUE(is_loop_free(u));
    program p2 = p;
    p2.functions[0] = u;
    for (std::uint64_t n = 0; n <= 6; ++n)
        EXPECT_EQ(interpret(p2, "f", {n}).return_value, interpret(p, "f", {n}).return_value);
}

TEST(transform, unroll_requires_bound) {
    program p = parse_program("int f() { while (1) { } return 0; }");
    EXPECT_THROW(unroll_loops(p.functions[0]), std::runtime_error);
}

TEST(transform, unroll_rejects_break) {
    program p = parse_program(
        "int f() { int i = 0; while (i < 3) bound 3 { break; } return i; }");
    EXPECT_THROW(unroll_loops(p.functions[0]), std::runtime_error);
}

TEST(transform, resolve_static_branches_folds_counters) {
    program p = parse_program(R"(
        int f(int x) {
          int i = 0;
          while (i < 3) bound 3 {
            if (x & 1) { x = x + i; }
            i = i + 1;
          }
          return x;
        }
    )");
    function u = resolve_static_branches(unroll_loops(p.functions[0]), p.width);
    // All `i < 3` guards fold away; only the three data-dependent branches remain.
    int ifs = 0;
    std::function<void(const std::vector<stmt>&)> count = [&](const std::vector<stmt>& body) {
        for (const stmt& s : body) {
            if (s.k == stmt::kind::if_stmt) ++ifs;
            count(s.body);
            count(s.else_body);
        }
    };
    count(u.body);
    EXPECT_EQ(ifs, 3);
    // Semantics preserved.
    program p2 = p;
    p2.functions[0] = u;
    for (std::uint64_t x : {0ULL, 1ULL, 7ULL, 100ULL})
        EXPECT_EQ(interpret(p2, "f", {x}).return_value, interpret(p, "f", {x}).return_value);
}

TEST(transform, inline_calls_flattens) {
    program p = parse_program(R"(
        int twice(int v) { int r = v + v; return r; }
        int f(int a) {
          int x = 0;
          x = twice(a + 1);
          int y = 0;
          y = twice(x);
          return y;
        }
    )");
    function flat = inline_calls(p, "f");
    // No call statements remain.
    std::function<bool(const std::vector<stmt>&)> has_call = [&](const std::vector<stmt>& body) {
        for (const stmt& s : body) {
            if (s.k == stmt::kind::call_stmt) return true;
            if (has_call(s.body) || has_call(s.else_body)) return true;
        }
        return false;
    };
    EXPECT_FALSE(has_call(flat.body));
    program p2 = p;
    p2.functions.push_back(flat);
    p2.functions.back().name = "f_flat";
    for (std::uint64_t a : {0ULL, 5ULL, 1000ULL})
        EXPECT_EQ(interpret(p2, "f_flat", {a}).return_value,
                  interpret(p, "f", {a}).return_value);
}

TEST(transform, inline_rejects_recursion_and_early_return) {
    program rec = parse_program(R"(
        int f(int x) { int y = 0; y = f(x); return y; }
    )");
    EXPECT_THROW(inline_calls(rec, "f"), std::runtime_error);
    program early = parse_program(R"(
        int g(int x) { if (x) { return 1; } return 0; }
        int f(int x) { int y = 0; y = g(x); return y; }
    )");
    EXPECT_THROW(inline_calls(early, "f"), std::runtime_error);
}

// Property: unroll+resolve preserves semantics on random branching programs.
class transform_property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(transform_property, pipeline_preserves_semantics) {
    program p = parse_program(R"(
        int f(int x, int y) {
          int acc = 0;
          int i = 0;
          while (i < 5) bound 5 {
            if ((x >> i) & 1) { acc = acc + y; } else { acc = acc ^ (y << 1); }
            if (acc > 1000) { acc = acc % 997; }
            i = i + 1;
          }
          return acc;
        }
    )");
    program p2 = p;
    p2.functions[0] = resolve_static_branches(unroll_loops(p.functions[0]), p.width);
    util::rng r(GetParam());
    for (int t = 0; t < 50; ++t) {
        std::uint64_t x = r.next_u64() & 0xffffffffULL;
        std::uint64_t y = r.next_u64() & 0xffffffffULL;
        ASSERT_EQ(interpret(p2, "f", {x, y}).return_value,
                  interpret(p, "f", {x, y}).return_value);
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, transform_property, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace sciduction::ir
