// Telemetry subsystem: the metrics registry (counters, gauges, log-scale
// histograms, snapshot keys), the span trace collector (bounded sharded
// buffer, Chrome JSON export, well-formedness), the solver progress hook,
// engine-level span coverage, and the determinism contract — deterministic
// portfolio and shard disciplines must stay bit-identical with tracing on.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "engine_test_util.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sat/pigeonhole.hpp"
#include "sat/solver.hpp"
#include "substrate/engine.hpp"
#include "substrate/portfolio.hpp"
#include "substrate/shard.hpp"

namespace sciduction {
namespace {

using sat::encode_pigeonhole;

// ---- metrics registry -------------------------------------------------------

TEST(metrics, counter_and_gauge_roundtrip) {
    obs::metrics_registry reg;
    obs::counter& c = reg.get_counter("server.submits");
    c.add();
    c.add(4);
    EXPECT_EQ(c.load(), 5u);
    obs::gauge& g = reg.get_gauge("server.inflight");
    g.set(17);
    g.set(3);
    EXPECT_EQ(g.load(), 3u);
    // get-or-create returns the same instrument, not a fresh one.
    EXPECT_EQ(&reg.get_counter("server.submits"), &c);
    EXPECT_EQ(reg.get_counter("server.submits").load(), 5u);
}

TEST(metrics, histogram_buckets_are_log_scale_upper_bounds) {
    obs::metrics_registry reg;
    obs::histogram& h = reg.get_histogram("lat");
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);  // empty
    for (int i = 0; i < 98; ++i) h.observe(3);  // bucket bit_width(3)=2, bound 3
    h.observe(900);   // bucket bit_width(900)=10, bound 1023
    h.observe(5000);  // bucket bit_width(5000)=13, bound 8191
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.quantile(0.5), 3u);
    EXPECT_EQ(h.quantile(0.99), 1023u);
    EXPECT_EQ(h.quantile(1.0), 8191u);
    // A zero observation lands in its own bucket with bound 0.
    obs::histogram& z = reg.get_histogram("zeros");
    z.observe(0);
    EXPECT_EQ(z.quantile(0.5), 0u);
    EXPECT_EQ(z.count(), 1u);
}

TEST(metrics, snapshot_flattens_counters_gauges_and_percentile_keys) {
    obs::metrics_registry reg;
    reg.get_counter("server.results").add(7);
    reg.get_gauge("pool.threads").set(4);
    obs::histogram& h = reg.get_histogram("server.service_ms");
    h.observe(10);
    h.observe(100);
    const std::map<std::string, std::uint64_t> snap = reg.snapshot();
    EXPECT_EQ(snap.at("server.results"), 7u);
    EXPECT_EQ(snap.at("pool.threads"), 4u);
    EXPECT_EQ(snap.at("server.service_ms.count"), 2u);
    EXPECT_TRUE(snap.count("server.service_ms.p50"));
    EXPECT_TRUE(snap.count("server.service_ms.p90"));
    EXPECT_TRUE(snap.count("server.service_ms.p99"));
    EXPECT_GE(snap.at("server.service_ms.p99"), snap.at("server.service_ms.p50"));
}

// ---- trace collector --------------------------------------------------------

TEST(trace, spans_record_sorted_balanced_events) {
    obs::trace_collector tc;
    const std::uint32_t track = tc.register_track("tenant:t0");
    EXPECT_EQ(tc.register_track("tenant:t0"), track) << "track registration dedups by name";
    {
        obs::span outer(&tc, track, "request");
        outer.arg("request", 42);
        {
            obs::span inner(&tc, track, "solve");
            inner.arg("conflicts", 7);
        }
    }
    const std::vector<obs::trace_event> events = tc.events();
    ASSERT_EQ(events.size(), 2u);
    // Sorted by (start asc, dur desc): the enclosing span precedes its child,
    // and every span is balanced (it closed, so start+dur <= now).
    EXPECT_EQ(events[0].name, "request");
    EXPECT_EQ(events[1].name, "solve");
    for (const obs::trace_event& e : events) {
        EXPECT_LE(e.start_us, e.start_us + e.dur_us);
        EXPECT_LE(e.start_us + e.dur_us, tc.now_us());
        EXPECT_EQ(e.track, track);
    }
    EXPECT_EQ(events[0].args.front().second, 42u);
    EXPECT_EQ(tc.dropped(), 0u);
}

TEST(trace, null_collector_span_is_inert) {
    obs::span s(nullptr, 0, "ghost");
    s.arg("k", 1);
    s.end();  // no crash, nothing recorded anywhere
    obs::span moved = std::move(s);
    moved.end();
}

TEST(trace, bounded_capacity_counts_drops_instead_of_growing) {
    obs::trace_collector tc(8);  // 1 slot per shard
    const std::uint32_t track = tc.register_track("t");
    for (int i = 0; i < 64; ++i)
        tc.record({"e" + std::to_string(i), track, static_cast<std::uint64_t>(i), 1, {}});
    EXPECT_LE(tc.events().size(), 8u);
    EXPECT_GE(tc.dropped(), 56u);
}

TEST(trace, json_export_is_chrome_trace_shaped) {
    obs::trace_collector tc;
    const std::uint32_t track = tc.register_track("tenant:alice");
    tc.record({"solve", track, 10, 5, {{"query", 1}}});
    const std::string json = tc.to_json();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << "complete events";
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos) << "track metadata";
    EXPECT_NE(json.find("tenant:alice"), std::string::npos);
    EXPECT_NE(json.find("\"query\":1"), std::string::npos);
    // Balanced braces/brackets — the cheap well-formedness invariant the
    // CI step re-checks with a real JSON parser.
    long depth = 0;
    for (char ch : json) {
        if (ch == '{' || ch == '[') ++depth;
        if (ch == '}' || ch == ']') --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

// ---- solver progress hook ---------------------------------------------------

TEST(solver_progress, hook_samples_restart_boundaries_and_reaches_final_counts) {
    sat::solver plain;
    encode_pigeonhole(plain, 6);
    ASSERT_EQ(plain.solve(), sat::solve_result::unsat);

    sat::solver hooked;
    encode_pigeonhole(hooked, 6);
    std::uint64_t calls = 0;
    std::uint64_t last_conflicts = 0;
    bool monotone = true;
    hooked.set_progress([&](const sat::solver_stats& s) {
        ++calls;
        if (s.conflicts < last_conflicts) monotone = false;
        last_conflicts = s.conflicts;
    });
    ASSERT_EQ(hooked.solve(), sat::solve_result::unsat);
    EXPECT_GE(calls, 2u) << "fires after initial import pull and after search returns";
    EXPECT_TRUE(monotone);
    EXPECT_EQ(last_conflicts, hooked.stats().conflicts)
        << "the last sample carries the final conflict count";
    // Observation-only contract: the hook must not perturb the search.
    EXPECT_EQ(hooked.stats(), plain.stats());
}

// ---- engine-level tracing ---------------------------------------------------

TEST(engine_trace, request_life_appears_as_spans_on_the_engine_track) {
    smt::term_manager tm;
    substrate::engine_config cfg;
    cfg.threads = 2;
    cfg.trace = std::make_shared<obs::trace_collector>();
    cfg.trace_track_name = "tenant:test";
    substrate::smt_engine engine(tm, cfg);

    smt::term x = tm.mk_bv_var("x", 8);
    const substrate::backend_result r =
        substrate::solve_portfolio(engine, {tm.mk_eq(x, tm.mk_bv_const(8, 5))});
    EXPECT_EQ(r.ans, substrate::answer::sat);

    std::vector<std::string> names;
    for (const obs::trace_event& e : cfg.trace->events()) names.push_back(e.name);
    auto has = [&](const std::string& n) {
        return std::find(names.begin(), names.end(), n) != names.end();
    };
    EXPECT_TRUE(has("submit"));
    EXPECT_TRUE(has("cache_lookup"));
    EXPECT_TRUE(has("solve"));
    const std::vector<std::string> tracks = cfg.trace->track_names();
    ASSERT_EQ(tracks.size(), 2u);  // "main" + the engine's tenant track
    EXPECT_EQ(tracks[1], "tenant:test");
}

// ---- determinism contract ---------------------------------------------------

std::unique_ptr<substrate::sat_backend> php_member(unsigned member, int holes) {
    auto b = std::make_unique<substrate::sat_backend>(substrate::diversified_options(member),
                                                      "php#" + std::to_string(member));
    encode_pigeonhole(b->solver(), holes);
    return b;
}

TEST(trace_determinism, deterministic_portfolio_is_bit_identical_with_tracing_on) {
    auto run = [](unsigned threads, obs::trace_collector* tc) {
        substrate::portfolio_config cfg;
        cfg.members = 4;
        cfg.sharing.enabled = true;
        cfg.sharing.deterministic = true;
        cfg.sharing.slice_conflicts = 300;
        substrate::solve_controls controls;
        controls.trace = tc;
        if (tc != nullptr) controls.trace_track = tc->register_track("t");
        substrate::thread_pool pool(threads);
        return substrate::race([&](unsigned m) { return php_member(m, 7); }, cfg, pool, controls);
    };
    const substrate::portfolio_outcome plain = run(1, nullptr);
    for (unsigned threads : {1u, 4u}) {
        obs::trace_collector tc;
        const substrate::portfolio_outcome traced = run(threads, &tc);
        EXPECT_EQ(traced.result.ans, substrate::answer::unsat);
        EXPECT_EQ(traced.winner, plain.winner);
        EXPECT_EQ(traced.rounds, plain.rounds);
        EXPECT_EQ(traced.total_conflicts, plain.total_conflicts);
        EXPECT_TRUE(traced.sharing == plain.sharing);
        EXPECT_FALSE(tc.events().empty()) << "tracing must actually record member spans";
    }
}

TEST(trace_determinism, deterministic_shard_is_bit_identical_with_tracing_on) {
    sat::solver probe;
    encode_pigeonhole(probe, 7);
    const substrate::cube_plan plan =
        substrate::generate_cubes(probe, {.depth = 2, .probe_candidates = 8});
    substrate::sharing_config share;
    share.enabled = true;
    share.deterministic = true;
    share.slice_conflicts = 300;
    auto run = [&](unsigned threads, obs::trace_collector* tc) {
        substrate::solve_controls controls;
        controls.trace = tc;
        if (tc != nullptr) controls.trace_track = tc->register_track("t");
        substrate::thread_pool pool(threads);
        return substrate::solve_cubes(
            [](std::size_t) {
                auto b = std::make_unique<substrate::sat_backend>();
                encode_pigeonhole(b->solver(), 7);
                return std::unique_ptr<substrate::solver_backend>(std::move(b));
            },
            plan, pool, share, controls);
    };
    const substrate::shard_outcome plain = run(1, nullptr);
    for (unsigned threads : {1u, 4u}) {
        obs::trace_collector tc;
        const substrate::shard_outcome traced = run(threads, &tc);
        EXPECT_EQ(traced.result.ans, substrate::answer::unsat);
        EXPECT_EQ(traced.stats, plain.stats);
        EXPECT_EQ(traced.cube_fates, plain.cube_fates);
        EXPECT_FALSE(tc.events().empty()) << "tracing must actually record pair/round spans";
    }
}

}  // namespace
}  // namespace sciduction
