// Learnt-clause sharing: pool filters and cursors, solver import/export
// plumbing, portfolio and shard integration, and the determinism contracts
// (sharing off = bit-identical legacy behaviour; deterministic sharing =
// identical answers and stats across thread counts).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "sat/pigeonhole.hpp"
#include "substrate/clause_exchange.hpp"
#include "engine_test_util.hpp"
#include "substrate/engine.hpp"
#include "substrate/portfolio.hpp"
#include "substrate/shard.hpp"

namespace sciduction::substrate {
namespace {

using sat::encode_pigeonhole;

/// DIMACS-style literal list: 1-based, negative means negated (so var k is
/// written k+1, and ~var k is -(k+1)).
sat::clause_lits lits(std::initializer_list<int> xs) {
    sat::clause_lits out;
    for (int x : xs) out.push_back(sat::mk_lit((x < 0 ? -x : x) - 1, x < 0));
    return out;
}

// ---- clause_pool ------------------------------------------------------------

TEST(clause_pool, filters_by_size_lbd_and_banned_vars) {
    sharing_config cfg;
    cfg.enabled = true;
    cfg.max_clause_size = 3;
    cfg.max_lbd = 2;
    clause_pool pool(cfg);
    unsigned a = pool.register_member();
    pool.ban_vars({7});

    pool.publish(a, lits({1, 2}), 2);            // accepted
    pool.publish(a, lits({1, 2, 3, 4}), 1);      // too long
    pool.publish(a, lits({1, 2}), 3);            // LBD too high
    pool.publish(a, lits({1, -8}), 1);           // mentions banned var 7
    EXPECT_EQ(pool.stats().published, 1u);
    EXPECT_EQ(pool.stats().filtered, 3u);
    EXPECT_EQ(pool.visible(), 1u);
}

TEST(clause_pool, cursor_skips_own_clauses_and_never_duplicates) {
    sharing_config cfg;
    cfg.enabled = true;
    clause_pool pool(cfg);
    unsigned a = pool.register_member();
    unsigned b = pool.register_member();

    pool.publish(a, lits({1, 2}), 1);
    pool.publish(b, lits({3, 4}), 1);

    std::vector<sat::clause_lits> got_a;
    EXPECT_EQ(pool.fetch(a, got_a), 1u);  // only b's clause
    ASSERT_EQ(got_a.size(), 1u);
    EXPECT_EQ(got_a[0], lits({3, 4}));
    got_a.clear();
    EXPECT_EQ(pool.fetch(a, got_a), 0u);  // nothing new on a second fetch

    std::vector<sat::clause_lits> got_b;
    EXPECT_EQ(pool.fetch(b, got_b), 1u);  // only a's clause
    EXPECT_EQ(got_b[0], lits({1, 2}));
}

TEST(clause_pool, deterministic_outboxes_seal_in_member_order) {
    sharing_config cfg;
    cfg.enabled = true;
    cfg.deterministic = true;
    clause_pool pool(cfg);
    unsigned a = pool.register_member();
    unsigned b = pool.register_member();
    unsigned c = pool.register_member();

    // Published "out of order" (as racing threads would): nothing visible
    // until the barrier, then visible in member order regardless.
    pool.publish(b, lits({3}), 1);
    pool.publish(a, lits({1}), 1);
    EXPECT_EQ(pool.visible(), 0u);
    std::vector<sat::clause_lits> got;
    EXPECT_EQ(pool.fetch(c, got), 0u);

    pool.seal_round();
    EXPECT_EQ(pool.visible(), 2u);
    EXPECT_EQ(pool.fetch(c, got), 2u);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], lits({1}));  // member a's clause first
    EXPECT_EQ(got[1], lits({3}));
}

// ---- sat::solver plumbing ---------------------------------------------------

TEST(solver_sharing, import_clauses_integrates_units_and_drops_satisfied) {
    sat::solver s;
    for (int i = 0; i < 4; ++i) s.new_var();
    s.add_clause(lits({1, 2}));  // v0 | v1
    s.add_clause(lits({3}));     // top-level unit: var 2 is true

    // Already-satisfied clause is dropped; a fresh binary is attached; a
    // unit is enqueued and propagated.
    std::size_t n = s.import_clauses({lits({3, 4}), lits({1, 4}), lits({-1})});
    EXPECT_EQ(n, 2u);
    EXPECT_EQ(s.stats().imported_clauses, 2u);
    // ~v0 was imported as a unit, so v0 is false and the problem clause
    // forces v1; the imported (v0 | v3) then forces v3.
    EXPECT_EQ(s.solve(), sat::solve_result::sat);
    EXPECT_FALSE(s.model_bool(0));
    EXPECT_TRUE(s.model_bool(1));
    EXPECT_TRUE(s.model_bool(3));
}

TEST(solver_sharing, imported_contradiction_makes_solver_unsat) {
    sat::solver s;
    s.new_var();
    s.add_clause(lits({1}));
    s.import_clauses({lits({-1})});
    EXPECT_FALSE(s.okay());
    EXPECT_EQ(s.solve(), sat::solve_result::unsat);
}

TEST(solver_sharing, conflict_pause_preserves_state_and_resumes_to_same_answer) {
    sat::solver plain;
    encode_pigeonhole(plain, 6);
    ASSERT_EQ(plain.solve(), sat::solve_result::unsat);

    sat::solver paused;
    encode_pigeonhole(paused, 6);
    std::uint64_t slices = 0;
    sat::solve_result r = sat::solve_result::unknown;
    while (r == sat::solve_result::unknown) {
        paused.set_conflict_pause(paused.stats().conflicts + 200);
        r = paused.solve();
        ++slices;
        ASSERT_LT(slices, 1000u) << "paused solve must converge";
    }
    paused.set_conflict_pause(0);
    EXPECT_EQ(r, sat::solve_result::unsat);
    EXPECT_GT(slices, 1u) << "PHP-6 takes >200 conflicts, so at least one pause";
}

TEST(solver_sharing, default_solver_has_no_sharing_overhead_and_identical_stats) {
    auto run = [](bool create_idle_pool) {
        sat::solver s;
        encode_pigeonhole(s, 6);
        // An idle pool (constructed, never attached) must not perturb the
        // solver: sharing is strictly opt-in via the hooks.
        clause_pool idle{sharing_config{}};
        (void)create_idle_pool;
        EXPECT_EQ(s.solve(), sat::solve_result::unsat);
        return s.stats();
    };
    sat::solver_stats a = run(false);
    sat::solver_stats b = run(true);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.exported_clauses, 0u);
    EXPECT_EQ(a.imported_clauses, 0u);
    EXPECT_EQ(a.useful_imports, 0u);
    EXPECT_EQ(a.lbd_sum, 0u);  // LBD tracking off by default
}

TEST(solver_sharing, track_lbd_accumulates_without_changing_search) {
    sat::solver plain;
    encode_pigeonhole(plain, 6);
    ASSERT_EQ(plain.solve(), sat::solve_result::unsat);

    sat::solver tracked;
    sat::solver_options opts;
    opts.track_lbd = true;
    tracked.set_options(opts);
    encode_pigeonhole(tracked, 6);
    ASSERT_EQ(tracked.solve(), sat::solve_result::unsat);

    EXPECT_GT(tracked.stats().lbd_sum, 0u);
    // Identical search: only the LBD bookkeeping differs.
    EXPECT_EQ(plain.stats().conflicts, tracked.stats().conflicts);
    EXPECT_EQ(plain.stats().decisions, tracked.stats().decisions);
    EXPECT_EQ(plain.stats().propagations, tracked.stats().propagations);
}

TEST(solver_sharing, clauses_flow_between_attached_solvers) {
    sharing_config cfg;
    cfg.enabled = true;
    cfg.max_clause_size = 12;
    cfg.max_lbd = 12;
    clause_pool pool(cfg);

    sat::solver producer;
    encode_pigeonhole(producer, 6);
    unsigned pid = pool.register_member();
    pool.attach(producer, pid);
    ASSERT_EQ(producer.solve(), sat::solve_result::unsat);
    EXPECT_GT(producer.stats().exported_clauses, 0u);
    ASSERT_GT(pool.visible(), 0u);

    sat::solver consumer;
    encode_pigeonhole(consumer, 6);
    unsigned cid = pool.register_member();
    pool.attach(consumer, cid);
    ASSERT_EQ(consumer.solve(), sat::solve_result::unsat);
    EXPECT_GT(consumer.stats().imported_clauses, 0u);
    EXPECT_GT(consumer.stats().useful_imports, 0u);
    // The consumer rides the producer's refutation: strictly fewer conflicts.
    EXPECT_LT(consumer.stats().conflicts, producer.stats().conflicts);
}

// ---- core-clean export under cube assumptions -------------------------------

TEST(clause_exchange, core_clean_export_filters_cube_variables) {
    // Solve PHP-6 under a cube literal with the cube variable banned: every
    // pooled clause must avoid it (clauses are formula consequences either
    // way — the filter keeps branch-local noise out of siblings).
    sat::solver probe;
    encode_pigeonhole(probe, 6);
    cube_plan plan = generate_cubes(probe, {.depth = 1, .probe_candidates = 8});
    ASSERT_EQ(plan.split_vars.size(), 1u);
    const sat::var split = plan.split_vars[0];

    sharing_config cfg;
    cfg.enabled = true;
    cfg.max_clause_size = 16;
    cfg.max_lbd = 16;
    clause_pool pool(cfg);
    pool.ban_vars({split});

    sat::solver worker;
    encode_pigeonhole(worker, 6);
    unsigned wid = pool.register_member();
    pool.attach(worker, wid);
    std::vector<sat::lit> cube = plan.cubes[0].lits;
    cube.insert(cube.end(), plan.forced.begin(), plan.forced.end());
    ASSERT_EQ(worker.solve(cube), sat::solve_result::unsat);
    ASSERT_GT(worker.stats().exported_clauses, 0u);

    unsigned reader = pool.register_member();
    std::vector<sat::clause_lits> shared;
    pool.fetch(reader, shared);
    for (const sat::clause_lits& c : shared)
        for (sat::lit l : c)
            EXPECT_NE(sat::var_of(l), split) << "core-clean filter must ban the split variable";
    // The filter actually rejected something (cube-adjacent clauses exist).
    EXPECT_GT(pool.stats().filtered, 0u);
}

TEST(clause_exchange, publish_filter_counters_merge_losslessly_under_concurrency) {
    // Pins the publish fast path's split accounting (the -Wthread-safety
    // contract made explicit in clause_exchange.hpp): size/LBD rejections
    // are counted on an atomic OUTSIDE the pool mutex, ban rejections and
    // acceptances under it, and stats() must merge the two streams without
    // losing a count even when publishers race.
    sharing_config cfg;
    cfg.enabled = true;
    cfg.max_clause_size = 3;
    cfg.max_lbd = 2;
    cfg.max_import_per_checkpoint = 0;  // drain in one fetch below
    clause_pool pool(cfg);
    pool.ban_vars({7});

    constexpr unsigned publishers = 4;
    constexpr std::uint64_t rounds = 500;
    std::vector<unsigned> members(publishers);
    for (unsigned m = 0; m < publishers; ++m) members[m] = pool.register_member();

    std::vector<std::uint64_t> accepted(publishers, 0);
    std::vector<std::thread> threads;
    threads.reserve(publishers);
    for (unsigned m = 0; m < publishers; ++m) {
        threads.emplace_back([&, m] {
            for (std::uint64_t i = 0; i < rounds; ++i) {
                if (pool.publish(members[m], lits({1, 2}), 1)) ++accepted[m];
                pool.publish(members[m], lits({1, 2, 3, 4}), 1);  // size-rejected (atomic)
                pool.publish(members[m], lits({1, 2}), 3);        // LBD-rejected (atomic)
                pool.publish(members[m], lits({1, -8}), 1);       // ban-rejected (locked)
            }
        });
    }
    for (std::thread& t : threads) t.join();

    std::uint64_t total_accepted = 0;
    for (std::uint64_t a : accepted) total_accepted += a;
    EXPECT_EQ(total_accepted, publishers * rounds);
    exchange_stats stats = pool.stats();
    EXPECT_EQ(stats.published, publishers * rounds);
    EXPECT_EQ(stats.filtered, 3 * publishers * rounds);
    EXPECT_EQ(pool.visible(), publishers * rounds);

    // Every member sees exactly the other members' accepted clauses.
    std::vector<sat::clause_lits> got;
    EXPECT_EQ(pool.fetch(members[0], got), (publishers - 1) * rounds);
    EXPECT_EQ(pool.stats().fetched, (publishers - 1) * rounds);
}

// ---- portfolio integration --------------------------------------------------

std::unique_ptr<sat_backend> pigeonhole_member(unsigned member, int holes) {
    auto b = std::make_unique<sat_backend>(diversified_options(member),
                                           "php#" + std::to_string(member));
    encode_pigeonhole(b->solver(), holes);
    return b;
}

TEST(portfolio_sharing, no_sharing_race_is_bitwise_legacy_for_each_member) {
    // With sharing off, a racing member's solver is untouched by the
    // exchange plumbing: member 0 run alone reproduces the plain solver
    // stats field for field.
    sat::solver plain;
    encode_pigeonhole(plain, 6);
    ASSERT_EQ(plain.solve(), sat::solve_result::unsat);

    auto b = pigeonhole_member(0, 6);
    backend_result r = b->check();
    EXPECT_EQ(r.ans, answer::unsat);
    EXPECT_EQ(b->sat_core()->stats(), plain.stats());
}

TEST(portfolio_sharing, deterministic_sharing_identical_across_thread_counts) {
    auto run = [](unsigned threads) {
        portfolio_config cfg;
        cfg.members = 4;
        cfg.sharing.enabled = true;
        cfg.sharing.deterministic = true;
        cfg.sharing.slice_conflicts = 300;
        thread_pool pool(threads);
        return race([&](unsigned m) { return pigeonhole_member(m, 7); }, cfg, pool);
    };
    portfolio_outcome one = run(1);
    portfolio_outcome four = run(4);
    EXPECT_EQ(one.result.ans, answer::unsat);
    EXPECT_EQ(four.result.ans, answer::unsat);
    EXPECT_EQ(one.winner, four.winner);
    EXPECT_EQ(one.rounds, four.rounds);
    EXPECT_EQ(one.total_conflicts, four.total_conflicts);
    EXPECT_TRUE(one.sharing == four.sharing);
    EXPECT_GT(one.sharing.imported, 0u) << "members must actually exchange clauses";
}

TEST(portfolio_sharing, deterministic_sharing_cuts_total_conflicts_on_pigeonhole) {
    // Same budgeted rounds with and without the exchange: sharing must
    // reduce the total work. Both runs are deterministic, so this is a
    // stable comparison, not a timing race.
    auto run = [](bool share) {
        portfolio_config cfg;
        cfg.members = 4;
        cfg.sequential = true;  // one schedule, no timing noise
        cfg.sharing.enabled = share;
        cfg.sharing.slice_conflicts = 500;
        cfg.sharing.max_clause_size = 32;
        cfg.sharing.max_lbd = 32;
        cfg.sharing.max_import_per_checkpoint = 16;
        return race([&](unsigned m) { return pigeonhole_member(m, 7); }, cfg);
    };
    portfolio_outcome shared = run(true);
    portfolio_outcome solo = run(false);
    ASSERT_EQ(shared.result.ans, answer::unsat);
    ASSERT_EQ(solo.result.ans, answer::unsat);
    EXPECT_LT(shared.total_conflicts, solo.total_conflicts);
}

TEST(portfolio_sharing, sequential_budgeted_portfolio_is_reproducible) {
    auto run = [] {
        portfolio_config cfg;
        cfg.members = 4;
        cfg.sequential = true;
        cfg.sharing.enabled = true;
        cfg.sharing.slice_conflicts = 250;
        return race([&](unsigned m) { return pigeonhole_member(m, 6); }, cfg);
    };
    portfolio_outcome a = run();
    portfolio_outcome b = run();
    EXPECT_EQ(a.result.ans, answer::unsat);
    EXPECT_EQ(a.winner, b.winner);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.total_conflicts, b.total_conflicts);
    EXPECT_TRUE(a.sharing == b.sharing);
}

TEST(portfolio_sharing, free_running_sharing_keeps_answers_and_models_sound) {
    // Satisfiable chain: any model must set every variable true. Sharing
    // must not perturb answers or model validity.
    auto build = [](sat::solver& s) {
        std::vector<sat::var> v;
        for (int i = 0; i < 20; ++i) v.push_back(s.new_var());
        s.add_clause(sat::mk_lit(v[0]));
        for (int i = 0; i + 1 < 20; ++i)
            s.add_clause(~sat::mk_lit(v[static_cast<std::size_t>(i)]),
                         sat::mk_lit(v[static_cast<std::size_t>(i) + 1]));
    };
    portfolio_config cfg;
    cfg.members = 4;
    cfg.threads = 4;
    cfg.sharing.enabled = true;
    auto outcome = race(
        [&](unsigned m) {
            auto b = std::make_unique<sat_backend>(diversified_options(m));
            build(b->solver());
            return b;
        },
        cfg);
    ASSERT_EQ(outcome.result.ans, answer::sat);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(outcome.result.sat_model[static_cast<std::size_t>(i)], sat::lbool::l_true);
}

// ---- shard integration ------------------------------------------------------

cube_plan php_plan(int holes, unsigned depth) {
    sat::solver probe;
    encode_pigeonhole(probe, holes);
    return generate_cubes(probe, {.depth = depth, .probe_candidates = 8});
}

TEST(shard_sharing, deterministic_sharing_identical_across_thread_counts) {
    cube_plan plan = php_plan(7, 2);
    sharing_config share;
    share.enabled = true;
    share.deterministic = true;
    share.slice_conflicts = 300;
    auto run = [&](unsigned threads) {
        return solve_cubes([] {
            auto b = std::make_unique<sat_backend>();
            encode_pigeonhole(b->solver(), 7);
            return b;
        }, plan, threads, share);
    };
    shard_outcome one = run(1);
    shard_outcome four = run(4);
    EXPECT_EQ(one.result.ans, answer::unsat);
    EXPECT_EQ(four.result.ans, answer::unsat);
    EXPECT_EQ(one.stats, four.stats);
    EXPECT_EQ(one.cube_fates, four.cube_fates);
    EXPECT_GT(one.stats.sharing.imported, 0u) << "pairs must actually exchange clauses";
}

TEST(shard_sharing, no_sharing_stats_unchanged_from_legacy_overload) {
    cube_plan plan = php_plan(6, 2);
    auto factory = [] {
        auto b = std::make_unique<sat_backend>();
        encode_pigeonhole(b->solver(), 6);
        return std::unique_ptr<solver_backend>(std::move(b));
    };
    shard_outcome legacy = solve_cubes(factory, plan, /*threads=*/2);
    shard_outcome explicit_off = solve_cubes(factory, plan, /*threads=*/2, sharing_config{});
    EXPECT_EQ(legacy.result.ans, answer::unsat);
    EXPECT_EQ(legacy.stats, explicit_off.stats);
    EXPECT_EQ(legacy.cube_fates, explicit_off.cube_fates);
    EXPECT_TRUE(legacy.stats.sharing == sharing_counters{});
}

TEST(shard_sharing, sharing_cuts_total_conflicts_at_depth_two) {
    cube_plan plan = php_plan(7, 2);
    auto factory = [] {
        auto b = std::make_unique<sat_backend>();
        encode_pigeonhole(b->solver(), 7);
        return std::unique_ptr<solver_backend>(std::move(b));
    };
    // Deterministic rounds make this a stable comparison, not a timing
    // race (PHP-7 wants a shorter slice than the PHP-8 bench config; see
    // the slice_conflicts guidance in docs/TUNING.md).
    sharing_config share;
    share.enabled = true;
    share.deterministic = true;
    share.slice_conflicts = 300;
    share.max_clause_size = 16;
    share.max_lbd = 10;
    share.max_import_per_checkpoint = 32;
    shard_outcome shared = solve_cubes(factory, plan, /*threads=*/2, share);
    shard_outcome solo = solve_cubes(factory, plan, /*threads=*/2);
    ASSERT_EQ(shared.result.ans, answer::unsat);
    ASSERT_EQ(solo.result.ans, answer::unsat);
    EXPECT_LT(shared.stats.conflicts, solo.stats.conflicts);
    EXPECT_GT(shared.stats.sharing.imported, 0u);
    EXPECT_GT(shared.stats.sharing.useful_imports, 0u);
}

// ---- engine integration -----------------------------------------------------

TEST(engine_sharing, sharded_with_sharing_matches_plain_check) {
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 16);
    smt::term y = tm.mk_bv_var("y", 16);
    std::vector<smt::term> assertions = {
        tm.mk_eq(tm.mk_bvmul(x, y), tm.mk_bv_const(16, 143)),
        tm.mk_ult(tm.mk_bv_const(16, 1), x),
        tm.mk_ult(x, tm.mk_bv_const(16, 100)),
    };
    smt_engine plain(tm, {});
    backend_result expect = solve_portfolio(plain, assertions);

    engine_config cfg;
    cfg.shard_depth = 2;
    cfg.threads = 2;
    cfg.sharing.enabled = true;
    cfg.sharing.deterministic = true;
    smt_engine sharded(tm, cfg);
    shard_stats stats;
    backend_result got = solve_sharded(sharded, assertions, &stats);
    EXPECT_EQ(got.ans, expect.ans);
    if (got.is_sat()) {
        model_evaluator eval(tm, got.model);
        EXPECT_EQ(eval.value(tm.mk_bvmul(x, y)), 143u);
    }
}

TEST(engine_sharing, sequential_budgeted_portfolio_matches_plain_check) {
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 12);
    smt::term y = tm.mk_bv_var("y", 12);
    // Obfuscated commutativity refutation (defeats the normalizing rewrite,
    // so the solver does real CDCL work): x + y != ((y + x) + y) - y.
    std::vector<smt::term> assertions = {
        tm.mk_distinct(tm.mk_bvadd(x, y),
                       tm.mk_bvsub(tm.mk_bvadd(tm.mk_bvadd(y, x), y), y)),
    };
    smt_engine plain(tm, {});
    backend_result expect = solve_portfolio(plain, assertions);
    ASSERT_EQ(expect.ans, answer::unsat);

    engine_config cfg;
    cfg.use_cache = false;
    cfg.portfolio_members = 3;
    cfg.sequential_portfolio = true;
    cfg.sharing.enabled = true;
    cfg.sharing.slice_conflicts = 200;
    smt_engine budgeted(tm, cfg);
    EXPECT_EQ(solve_portfolio(budgeted, assertions).ans, answer::unsat);
}

}  // namespace
}  // namespace sciduction::substrate
