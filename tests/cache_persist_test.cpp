// The structural / cross-manager / persistent query cache (ISSUE 5):
// canonical-form equality across independently built managers, model
// remapping with evaluation verification, the on-disk format's
// version/corruption tolerance, LRU interaction with persisted entries,
// the CNF-level fingerprint cache, and the cold-vs-warm smt_engine
// integration the acceptance criteria name.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <stdexcept>
#include <string>

#include "aig/aig.hpp"
#include "invgen/invgen.hpp"
#include "sat/pigeonhole.hpp"
#include "engine_test_util.hpp"
#include "substrate/engine.hpp"
#include "substrate/query_cache.hpp"

namespace sciduction::substrate {
namespace {

/// A per-test scratch file that is removed on scope exit.
struct scratch_file {
    std::string path;
    explicit scratch_file(const std::string& name) : path(testing::TempDir() + name) {
        std::remove(path.c_str());
    }
    ~scratch_file() { std::remove(path.c_str()); }
};

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& body) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
}

// ---- canonical structural form ----------------------------------------------

TEST(structural_form, independently_built_managers_agree) {
    smt::term_manager tm1;
    smt::term x1 = tm1.mk_bv_var("x", 8);
    smt::term y1 = tm1.mk_bv_var("y", 8);
    smt::term f1 = tm1.mk_ult(tm1.mk_bvadd(x1, y1), tm1.mk_bv_const(8, 10));

    smt::term_manager tm2;  // interleaved junk shifts every term id
    tm2.mk_bv_var("unrelated", 32);
    tm2.mk_bool_var("noise");
    smt::term x2 = tm2.mk_bv_var("x", 8);
    smt::term y2 = tm2.mk_bv_var("y", 8);
    smt::term f2 = tm2.mk_ult(tm2.mk_bvadd(x2, y2), tm2.mk_bv_const(8, 10));

    query_cache c1(tm1);
    query_cache c2(tm2);
    EXPECT_EQ(c1.form_of(tm1, {f1}), c2.form_of(tm2, {f2}));
    EXPECT_EQ(c1.form_of(tm1, {f1}).hash, c2.form_of(tm2, {f2}).hash);
}

TEST(structural_form, commuted_operands_coincide) {
    smt::term_manager tm1;
    smt::term f1 = tm1.mk_ult(tm1.mk_bvadd(tm1.mk_bv_var("x", 8), tm1.mk_bv_var("y", 8)),
                              tm1.mk_bv_const(8, 10));
    smt::term_manager tm2;
    smt::term f2 = tm2.mk_ult(tm2.mk_bvadd(tm2.mk_bv_var("y", 8), tm2.mk_bv_var("x", 8)),
                              tm2.mk_bv_const(8, 10));
    query_cache c1(tm1);
    query_cache c2(tm2);
    EXPECT_EQ(c1.form_of(tm1, {f1}), c2.form_of(tm2, {f2}));

    // Boolean connectives commute too.
    smt::term a1 = tm1.mk_bool_var("a");
    smt::term b1 = tm1.mk_bool_var("b");
    smt::term a2 = tm2.mk_bool_var("a");
    smt::term b2 = tm2.mk_bool_var("b");
    EXPECT_EQ(c1.form_of(tm1, {tm1.mk_and(a1, b1)}), c2.form_of(tm2, {tm2.mk_and(b2, a2)}));
    // A standalone `x - y < 10` IS alpha-equivalent to `y - x < 10` (swap
    // the variables), so those forms rightly coincide. Pinning one
    // variable's role elsewhere breaks the symmetry, and then the
    // non-commutative operand order must keep the queries apart.
    smt::term sub1 = tm1.mk_ult(tm1.mk_bvsub(tm1.mk_bv_var("x", 8), tm1.mk_bv_var("y", 8)),
                                tm1.mk_bv_const(8, 10));
    smt::term pin1 = tm1.mk_ult(tm1.mk_bv_var("x", 8), tm1.mk_bv_const(8, 3));
    smt::term sub2 = tm2.mk_ult(tm2.mk_bvsub(tm2.mk_bv_var("y", 8), tm2.mk_bv_var("x", 8)),
                                tm2.mk_bv_const(8, 10));
    smt::term pin2 = tm2.mk_ult(tm2.mk_bv_var("x", 8), tm2.mk_bv_const(8, 3));
    EXPECT_FALSE(c1.form_of(tm1, {sub1, pin1}) == c2.form_of(tm2, {sub2, pin2}));
}

TEST(structural_form, renamed_variables_coincide) {
    smt::term_manager tm1;
    smt::term f1 = tm1.mk_ult(tm1.mk_bv_var("x", 8), tm1.mk_bv_const(8, 50));
    smt::term_manager tm2;
    smt::term f2 = tm2.mk_ult(tm2.mk_bv_var("totally_different_name", 8),
                              tm2.mk_bv_const(8, 50));
    query_cache c1(tm1);
    query_cache c2(tm2);
    EXPECT_EQ(c1.form_of(tm1, {f1}), c2.form_of(tm2, {f2}));
    EXPECT_EQ(c1.structural_hash(f1), c2.structural_hash(f2));
    // A different width is a different shape, name notwithstanding.
    smt::term wide = tm2.mk_ult(tm2.mk_bv_var("x", 16), tm2.mk_bv_const(16, 50));
    EXPECT_FALSE(c1.form_of(tm1, {f1}) == c2.form_of(tm2, {wide}));
}

TEST(structural_form, distinct_queries_differ) {
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 8);
    smt::term f10 = tm.mk_ult(x, tm.mk_bv_const(8, 10));
    smt::term f11 = tm.mk_ult(x, tm.mk_bv_const(8, 11));
    query_cache c(tm);
    EXPECT_FALSE(c.form_of(tm, {f10}) == c.form_of(tm, {f11}));
    // Assertion vs assumption position is part of the identity.
    EXPECT_FALSE(c.form_of(tm, {f10}, {}) == c.form_of(tm, {}, {f10}));
    // Order and duplicates are not.
    EXPECT_EQ(c.form_of(tm, {f10, f11, f10}), c.form_of(tm, {f11, f10}));
}

// ---- cross-manager reuse ----------------------------------------------------

TEST(cross_manager, shared_cache_solves_once_and_remaps_verified_model) {
    // The acceptance shape: two independently constructed term_managers,
    // structurally identical SAT query (different variable names even),
    // one solver call total, second answer via a remapped model that
    // evaluation-verifies.
    auto cache = std::make_shared<query_cache>(std::string{});

    smt::term_manager tm_a;
    smt_engine engine_a(tm_a, {.shared_cache = cache});
    smt::term x = tm_a.mk_bv_var("x", 8);
    smt::term f_a = tm_a.mk_and(tm_a.mk_ult(x, tm_a.mk_bv_const(8, 50)),
                                tm_a.mk_ult(tm_a.mk_bv_const(8, 40), x));
    auto r_a = solve_portfolio(engine_a, {f_a});
    ASSERT_EQ(r_a.ans, answer::sat);
    EXPECT_EQ(engine_a.stats().solver_runs, 1u);

    smt::term_manager tm_b;
    smt_engine engine_b(tm_b, {.shared_cache = cache});
    // Junk terms shift every id: manager B genuinely cannot take the
    // native fast path (identically built managers share ids and may).
    tm_b.mk_bv_var("junk", 32);
    tm_b.mk_bool_var("more_junk");
    smt::term y = tm_b.mk_bv_var("y", 8);  // renamed variable
    smt::term f_b = tm_b.mk_and(tm_b.mk_ult(y, tm_b.mk_bv_const(8, 50)),
                                tm_b.mk_ult(tm_b.mk_bv_const(8, 40), y));
    auto r_b = solve_portfolio(engine_b, {f_b});
    ASSERT_EQ(r_b.ans, answer::sat);
    EXPECT_EQ(engine_b.stats().solver_runs, 0u);
    EXPECT_EQ(engine_b.stats().cache_hits, 1u);
    EXPECT_EQ(engine_b.stats().structural_hits, 1u);
    EXPECT_EQ(engine_b.stats().remapped_models, 1u);
    // The remapped model satisfies the requester's formula in the
    // requester's coordinates.
    EXPECT_EQ(eval_model(tm_b, f_b, r_b.model), 1u);
    EXPECT_EQ(eval_model(tm_b, y, r_b.model), eval_model(tm_a, x, r_a.model));
}

TEST(cross_manager, unsat_results_transfer) {
    auto cache = std::make_shared<query_cache>(std::string{});
    smt::term_manager tm_a;
    smt_engine engine_a(tm_a, {.shared_cache = cache});
    smt::term x = tm_a.mk_bv_var("x", 8);
    auto r_a = solve_portfolio(engine_a, {tm_a.mk_ult(x, tm_a.mk_bv_const(8, 4)),
                               tm_a.mk_ult(tm_a.mk_bv_const(8, 9), x)});
    ASSERT_EQ(r_a.ans, answer::unsat);

    smt::term_manager tm_b;
    smt_engine engine_b(tm_b, {.shared_cache = cache});
    tm_b.mk_bv_var("junk", 32);  // shift ids off manager A's
    smt::term z = tm_b.mk_bv_var("z", 8);
    auto r_b = solve_portfolio(engine_b, {tm_b.mk_ult(tm_b.mk_bv_const(8, 9), z),
                               tm_b.mk_ult(z, tm_b.mk_bv_const(8, 4))});
    EXPECT_EQ(r_b.ans, answer::unsat);
    EXPECT_EQ(engine_b.stats().solver_runs, 0u);
    EXPECT_EQ(engine_b.stats().structural_hits, 1u);
    EXPECT_EQ(engine_b.stats().remapped_models, 0u);  // no model to remap
}

TEST(cross_manager, same_manager_hits_replay_native_results_verbatim) {
    auto cache = std::make_shared<query_cache>(std::string{});
    smt::term_manager tm;
    smt_engine engine(tm, {.shared_cache = cache});
    smt::term f = tm.mk_ult(tm.mk_bv_var("x", 16), tm.mk_bv_const(16, 7));
    auto r1 = solve_portfolio(engine, {f});
    auto r2 = solve_portfolio(engine, {f});
    EXPECT_EQ(r1.model, r2.model);  // memoized model replayed verbatim
    EXPECT_EQ(engine.stats().structural_hits, 0u);  // native fast path
}

TEST(cross_manager, unverifiable_model_reads_as_miss) {
    // A poisoned sat entry (as a corrupt persistence file could produce)
    // must fail evaluation-verification on the structural path and fall
    // back to a miss — never surface an invalid model.
    smt::term_manager tm_a;
    query_cache cache(tm_a);
    smt::term x = tm_a.mk_bv_var("x", 8);
    smt::term f_a = tm_a.mk_ult(x, tm_a.mk_bv_const(8, 50));
    backend_result poisoned;
    poisoned.ans = answer::sat;
    poisoned.model = {{x.id, 200}};  // 200 < 50 is false
    cache.insert({f_a}, {}, poisoned);

    smt::term_manager tm_b;
    tm_b.mk_bv_var("junk", 32);  // shift ids so the structural path engages
    smt::term y = tm_b.mk_bv_var("y", 8);
    smt::term f_b = tm_b.mk_ult(y, tm_b.mk_bv_const(8, 50));
    EXPECT_FALSE(cache.lookup_in(tm_b, {f_b}).has_value());
    EXPECT_EQ(cache.stats().remap_rejects, 1u);
    EXPECT_EQ(cache.stats().structural_hits, 0u);
}

TEST(manager_memo, lru_eviction_survives_manager_churn) {
    // Pins the per-manager memo bound's LRU eviction (state_for in
    // query_cache.cpp, a lock-juggling hot spot whose lock contract is now
    // explicit via SD_REQUIRES): churning through well over 32 transient
    // managers evicts memo states one at a time, every transient manager
    // still hits the structurally identical entry, and the long-lived
    // manager keeps answering correctly after its memo is rebuilt.
    query_cache cache{std::string{}};

    auto build = [](smt::term_manager& tm) {
        smt::term x = tm.mk_bv_var("x", 8);
        return std::vector<smt::term>{
            tm.mk_ult(x, tm.mk_bv_const(8, 50)),
            tm.mk_ult(tm.mk_bv_const(8, 60), x),  // x > 60 && x < 50: unsat
        };
    };

    smt::term_manager live;
    std::vector<smt::term> live_q = build(live);
    auto prep = cache.prepare(live, live_q, {});
    backend_result unsat_res;
    unsat_res.ans = answer::unsat;
    cache.insert_prepared(live, *prep, unsat_res);

    for (int i = 0; i < 40; ++i) {
        smt::term_manager tm;
        std::vector<smt::term> q = build(tm);
        auto p = cache.prepare(tm, q, {});
        auto hit = cache.lookup_prepared(tm, *p);
        ASSERT_TRUE(hit.has_value()) << "churn iteration " << i;
        EXPECT_EQ(hit->ans, answer::unsat) << "churn iteration " << i;
    }

    // The long-lived manager's memo state may or may not have been
    // evicted along the way; either way a fresh prepare must rebuild the
    // same key and keep hitting.
    auto prep_again = cache.prepare(live, live_q, {});
    EXPECT_EQ(prep_again->key, prep->key);
    auto live_hit = cache.lookup_prepared(live, *prep_again);
    ASSERT_TRUE(live_hit.has_value());
    EXPECT_EQ(live_hit->ans, answer::unsat);
}

// ---- persistence ------------------------------------------------------------

TEST(persistence, engine_warm_starts_from_saved_cache) {
    // The acceptance shape: a second engine instance (fresh term_manager,
    // as a second process would have) pointed at the same cache_path
    // answers with zero solver calls.
    scratch_file file("sciduction_warm_engine.bin");
    smt::env model_a;
    {
        smt::term_manager tm;
        smt_engine engine(tm, {.cache_path = file.path});
        smt::term x = tm.mk_bv_var("x", 8);
        auto r = solve_portfolio(engine, {tm.mk_ult(x, tm.mk_bv_const(8, 50)),
                               tm.mk_ult(tm.mk_bv_const(8, 40), x)});
        ASSERT_EQ(r.ans, answer::sat);
        EXPECT_EQ(engine.stats().solver_runs, 1u);
        EXPECT_EQ(engine.stats().persisted_loads, 0u);  // cold start
        model_a = r.model;
    }  // ~smt_engine -> ~query_cache saves
    {
        smt::term_manager tm;
        smt_engine engine(tm, {.cache_path = file.path});
        EXPECT_GE(engine.stats().persisted_loads, 1u);
        smt::term renamed = tm.mk_bv_var("warm", 8);
        smt::term f = tm.mk_and(tm.mk_ult(renamed, tm.mk_bv_const(8, 50)),
                                tm.mk_ult(tm.mk_bv_const(8, 40), renamed));
        // Same structure modulo renaming and and-folding differences?
        // Build it exactly like run 1 to be structurally identical.
        auto r = solve_portfolio(engine, {tm.mk_ult(renamed, tm.mk_bv_const(8, 50)),
                               tm.mk_ult(tm.mk_bv_const(8, 40), renamed)});
        ASSERT_EQ(r.ans, answer::sat);
        EXPECT_EQ(engine.stats().solver_runs, 0u);
        EXPECT_EQ(engine.stats().cache_hits, 1u);
        EXPECT_EQ(engine.stats().structural_hits, 1u);
        EXPECT_EQ(engine.stats().remapped_models, 1u);
        EXPECT_EQ(eval_model(tm, f, r.model), 1u);
    }
}

TEST(persistence, garbage_file_degrades_to_cold_start) {
    scratch_file file("sciduction_garbage.bin");
    write_file(file.path, "this is definitely not a cache file");
    smt::term_manager tm;
    query_cache cache(tm, 0, file.path);
    EXPECT_EQ(cache.stats().persisted_loads, 0u);
    // The cache still works, and save() replaces the garbage.
    smt::term x = tm.mk_bv_var("x", 8);
    backend_result unsat_r;
    unsat_r.ans = answer::unsat;
    cache.insert({tm.mk_ult(x, tm.mk_bv_const(8, 3))}, {}, unsat_r);
    EXPECT_TRUE(cache.save());
    query_cache reread(tm, 0, file.path);
    EXPECT_EQ(reread.stats().persisted_loads, 1u);
}

TEST(persistence, version_bump_is_ignored) {
    scratch_file file("sciduction_version.bin");
    smt::term_manager tm;
    {
        query_cache cache(tm, 0, file.path);
        backend_result r;
        r.ans = answer::unsat;
        cache.insert({tm.mk_bool_var("p")}, {}, r);
        EXPECT_TRUE(cache.save());
    }
    std::string body = read_file(file.path);
    ASSERT_GT(body.size(), 8u);
    body[4] = 99;  // version field follows the 4-byte magic
    write_file(file.path, body);
    query_cache cache(tm, 0, file.path);
    EXPECT_EQ(cache.stats().persisted_loads, 0u);
}

TEST(persistence, corrupt_record_is_skipped_rest_loads) {
    scratch_file file("sciduction_corrupt.bin");
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 8);
    {
        query_cache cache(tm, 0, file.path);
        backend_result r;
        r.ans = answer::unsat;
        cache.insert({tm.mk_ult(x, tm.mk_bv_const(8, 3))}, {}, r);
        cache.insert({tm.mk_ult(x, tm.mk_bv_const(8, 5))}, {}, r);
        EXPECT_TRUE(cache.save());
    }
    std::string body = read_file(file.path);
    ASSERT_GT(body.size(), 4u);
    body.back() = static_cast<char>(body.back() ^ 0x5a);  // flip inside last record
    write_file(file.path, body);
    query_cache cache(tm, 0, file.path);
    EXPECT_EQ(cache.stats().persisted_loads, 1u);
    EXPECT_EQ(cache.stats().persist_rejects, 1u);
}

TEST(persistence, truncated_file_keeps_loadable_prefix) {
    scratch_file file("sciduction_truncated.bin");
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 8);
    {
        query_cache cache(tm, 0, file.path);
        backend_result r;
        r.ans = answer::unsat;
        cache.insert({tm.mk_ult(x, tm.mk_bv_const(8, 3))}, {}, r);
        cache.insert({tm.mk_ult(x, tm.mk_bv_const(8, 5))}, {}, r);
        EXPECT_TRUE(cache.save());
    }
    std::string body = read_file(file.path);
    write_file(file.path, body.substr(0, body.size() - 7));  // cut into the last record
    query_cache cache(tm, 0, file.path);
    EXPECT_EQ(cache.stats().persisted_loads, 1u);
}

TEST(persistence, lru_eviction_composes_with_persisted_entries) {
    scratch_file file("sciduction_lru.bin");
    smt::term_manager tm;
    smt::term x = tm.mk_bv_var("x", 8);
    auto query = [&](std::uint64_t bound) {
        return std::vector<smt::term>{tm.mk_ult(x, tm.mk_bv_const(8, bound))};
    };
    backend_result r;
    r.ans = answer::unsat;
    {
        query_cache cache(tm, 2, file.path);
        cache.insert(query(1), {}, r);
        cache.insert(query(2), {}, r);
        cache.insert(query(3), {}, r);  // evicts query(1)
        EXPECT_EQ(cache.stats().evictions, 1u);
        EXPECT_EQ(cache.size(), 2u);
        EXPECT_TRUE(cache.save());
    }
    {
        // save() wrote only the residents, in recency order.
        query_cache cache(tm, 0, file.path);
        EXPECT_EQ(cache.stats().persisted_loads, 2u);
        EXPECT_FALSE(cache.lookup(query(1)).has_value());
        EXPECT_TRUE(cache.lookup(query(2)).has_value());
        EXPECT_TRUE(cache.lookup(query(3)).has_value());
    }
    {
        // Loaded entries keep their recency: a capacity-2 cache that loads
        // {2, 3} and inserts a fresh query evicts 2 (the older), not 3.
        query_cache cache(tm, 2, file.path);
        EXPECT_EQ(cache.stats().persisted_loads, 2u);
        cache.insert(query(4), {}, r);
        EXPECT_FALSE(cache.lookup(query(2)).has_value());
        EXPECT_TRUE(cache.lookup(query(3)).has_value());
        EXPECT_TRUE(cache.lookup(query(4)).has_value());
    }
}

// ---- CNF-level fingerprint cache --------------------------------------------

TEST(cnf_cache, fingerprint_identifies_the_clause_stream) {
    sat::solver a;
    sat::solver b;
    encode_pigeonhole(a, 4);
    encode_pigeonhole(b, 4);
    EXPECT_EQ(cnf_fingerprint::of(a), cnf_fingerprint::of(b));
    sat::solver c;
    encode_pigeonhole(c, 5);
    EXPECT_FALSE(cnf_fingerprint::of(a) == cnf_fingerprint::of(c));
    // The digest is order-sensitive on purpose: deterministic builders
    // replay the same order, and order-sensitivity keeps it O(1) per
    // clause.
    b.add_clause(sat::mk_lit(b.new_var()));
    EXPECT_FALSE(cnf_fingerprint::of(a) == cnf_fingerprint::of(b));
}

TEST(cnf_cache, solve_cnf_memoizes_unsat_and_validates_sat) {
    query_cache cache{std::string{}};
    auto build_unsat = [](unsigned, sat::solver& s) { encode_pigeonhole(s, 5); };
    auto first = solve_cnf(build_unsat, strategy::single(), 1, {}, &cache);
    EXPECT_TRUE(first.result.is_unsat());
    EXPECT_FALSE(first.cache_hit);
    auto second = solve_cnf(build_unsat, strategy::single(), 1, {}, &cache);
    EXPECT_TRUE(second.result.is_unsat());
    EXPECT_TRUE(second.cache_hit);
    EXPECT_EQ(second.result.conflicts, first.result.conflicts);

    // Satisfiable chain: the cached model is re-validated by propagation
    // on the fresh instance and returned.
    auto build_sat = [](unsigned, sat::solver& s) {
        std::vector<sat::var> v;
        for (int i = 0; i < 12; ++i) v.push_back(s.new_var());
        s.add_clause(sat::mk_lit(v[0]));
        for (int i = 0; i + 1 < 12; ++i)
            s.add_clause(~sat::mk_lit(v[static_cast<std::size_t>(i)]),
                         sat::mk_lit(v[static_cast<std::size_t>(i + 1)]));
    };
    auto sat_first = solve_cnf(build_sat, strategy::single(), 1, {}, &cache);
    ASSERT_TRUE(sat_first.result.is_sat());
    auto sat_second = solve_cnf(build_sat, strategy::single(), 1, {}, &cache);
    ASSERT_TRUE(sat_second.result.is_sat());
    EXPECT_TRUE(sat_second.cache_hit);
    for (std::size_t v = 0; v < 12; ++v)
        EXPECT_EQ(sat_second.result.sat_model[v], sat::lbool::l_true) << v;
}

TEST(cnf_cache, refuted_cached_model_is_replaced_by_the_fresh_solve) {
    query_cache cache{std::string{}};
    auto build = [](unsigned, sat::solver& s) {
        std::vector<sat::var> v;
        for (int i = 0; i < 6; ++i) v.push_back(s.new_var());
        s.add_clause(sat::mk_lit(v[0]));
        for (int i = 0; i + 1 < 6; ++i)
            s.add_clause(~sat::mk_lit(v[static_cast<std::size_t>(i)]),
                         sat::mk_lit(v[static_cast<std::size_t>(i + 1)]));
    };
    // Fabricate a poisoned entry under the real fingerprint: the all-false
    // model contradicts the forced v0, so re-validation refutes it.
    sat::solver probe;
    build(0, probe);
    cnf_fingerprint fp = cnf_fingerprint::of(probe);
    backend_result poisoned;
    poisoned.ans = answer::sat;
    poisoned.sat_model.assign(6, sat::lbool::l_false);
    cache.insert_cnf(fp, poisoned);

    // The refuted model falls through to a fresh solve, whose result must
    // REPLACE the poisoned entry (not be dropped on the floor)...
    auto first = solve_cnf(build, strategy::single(), 1, {}, &cache);
    ASSERT_TRUE(first.result.is_sat());
    EXPECT_FALSE(first.cache_hit);
    // ...so the next run is a clean validated hit instead of paying the
    // failed validation forever.
    auto second = solve_cnf(build, strategy::single(), 1, {}, &cache);
    EXPECT_TRUE(second.cache_hit);
    ASSERT_TRUE(second.result.is_sat());
    EXPECT_EQ(second.result.sat_model[0], sat::lbool::l_true);
}

TEST(cnf_cache, per_request_cache_bypass_is_honoured) {
    query_cache cache{std::string{}};
    auto build = [](unsigned, sat::solver& s) { encode_pigeonhole(s, 4); };
    strategy no_cache = strategy::single();
    no_cache.use_cache = false;
    (void)solve_cnf(build, no_cache, 1, {}, &cache);
    EXPECT_EQ(cache.cnf_size(), 0u);
    (void)solve_cnf(build, strategy::single(), 1, {}, &cache);
    EXPECT_EQ(cache.cnf_size(), 1u);
}

TEST(cnf_cache, persists_across_cache_instances) {
    scratch_file file("sciduction_cnf.bin");
    auto build = [](unsigned, sat::solver& s) { encode_pigeonhole(s, 5); };
    std::uint64_t cold_conflicts = 0;
    {
        query_cache cache(file.path);
        auto out = solve_cnf(build, strategy::single(), 1, {}, &cache);
        EXPECT_TRUE(out.result.is_unsat());
        cold_conflicts = out.result.conflicts;
        EXPECT_GT(cold_conflicts, 0u);
    }
    {
        query_cache cache(file.path);
        EXPECT_GE(cache.stats().persisted_loads, 1u);
        auto out = solve_cnf(build, strategy::single(), 1, {}, &cache);
        EXPECT_TRUE(out.result.is_unsat());
        EXPECT_TRUE(out.cache_hit);
        EXPECT_EQ(out.result.conflicts, cold_conflicts);
    }
}

TEST(cnf_cache, manager_less_cache_rejects_term_level_calls) {
    query_cache cache{std::string{}};
    EXPECT_THROW((void)cache.lookup({}, {}), std::logic_error);
}

// ---- application warm starts ------------------------------------------------

TEST(application_warm_start, invgen_warm_run_matches_cold_run) {
    aig::aig circuit;
    aig::literal in = circuit.add_input();
    aig::literal stuck = circuit.add_latch(false);
    aig::literal l1 = circuit.add_latch(false);
    aig::literal l2 = circuit.add_latch(false);
    circuit.set_latch_next(stuck, stuck);
    circuit.set_latch_next(l1, in);
    circuit.set_latch_next(l2, in);

    auto to_strings = [](const std::vector<invgen::candidate>& cs) {
        std::multiset<std::string> out;
        for (const auto& c : cs) out.insert(c.to_string());
        return out;
    };
    auto cold = invgen::generate_invariants(circuit, {});

    scratch_file file("sciduction_invgen.bin");
    invgen::invgen_config cached_cfg;
    cached_cfg.cache_path = file.path;
    auto first = invgen::generate_invariants(circuit, cached_cfg);
    EXPECT_EQ(to_strings(cold.proven), to_strings(first.proven));
    // The second run is warm (same seed => identical query stream) and
    // must reach the identical fixpoint.
    auto warm = invgen::generate_invariants(circuit, cached_cfg);
    EXPECT_EQ(to_strings(cold.proven), to_strings(warm.proven));
    EXPECT_EQ(cold.induction_iterations, warm.induction_iterations);

    // The proof entry point persists its base/step queries the same way.
    invgen::proof_config proof_cfg;
    proof_cfg.cache_path = file.path;
    bool plain = invgen::prove_with_invariants(circuit, aig::negate(stuck), cold.proven);
    bool cached1 = invgen::prove_with_invariants(circuit, aig::negate(stuck), cold.proven,
                                                 proof_cfg);
    bool cached2 = invgen::prove_with_invariants(circuit, aig::negate(stuck), cold.proven,
                                                 proof_cfg);
    EXPECT_EQ(plain, cached1);
    EXPECT_EQ(plain, cached2);
}

TEST(application_warm_start, per_request_use_cache_false_skips_persisted_entries) {
    scratch_file file("sciduction_bypass.bin");
    {
        smt::term_manager tm;
        smt_engine engine(tm, {.cache_path = file.path});
        smt::term x = tm.mk_bv_var("x", 8);
        (void)solve_portfolio(engine, {tm.mk_ult(x, tm.mk_bv_const(8, 50))});
    }
    smt::term_manager tm;
    smt_engine engine(tm, {.cache_path = file.path});
    smt::term x = tm.mk_bv_var("x", 8);
    solve_request req;
    req.assertions = {tm.mk_ult(x, tm.mk_bv_const(8, 50))};
    req.strategy = strategy::single();
    req.strategy.use_cache = false;
    auto r = engine.submit(std::move(req)).get();
    EXPECT_EQ(r.ans, answer::sat);
    EXPECT_EQ(engine.stats().cache_hits, 0u);
    EXPECT_EQ(engine.stats().solver_runs, 1u);
}

}  // namespace
}  // namespace sciduction::substrate
