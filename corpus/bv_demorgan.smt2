; De Morgan over bit-vectors: not(x and y) == not(x) or not(y).
(set-logic QF_BV)
(set-info :status unsat)
(declare-const x (_ BitVec 24))
(declare-const y (_ BitVec 24))
(assert (distinct (bvnot (bvand x y)) (bvor (bvnot x) (bvnot y))))
(check-sat)
(exit)
