; Multiplication distributes over addition (5-bit): refutation is unsat.
; (Multiplier circuits blow up fast with width -- 5 bits keeps this a
; seconds-scale scenario while still exercising the full adder/mul path.)
(set-logic QF_BV)
(set-info :status unsat)
(declare-const x (_ BitVec 5))
(declare-const y (_ BitVec 5))
(declare-const z (_ BitVec 5))
(assert (distinct (bvmul x (bvadd y z)) (bvadd (bvmul x y) (bvmul x z))))
(check-sat)
(exit)
