; Two's-complement abs has a fixed point: abs(x) = 0x80 forces x = 0x80.
(set-logic QF_BV)
(set-info :status sat)
(declare-const x (_ BitVec 8))
(assert (= (ite (bvslt x #x00) (bvneg x) x) #x80))
(check-sat)
(get-model)
(exit)
