; OGIS distinguishing input: two candidate programs (x | 1 vs x + 1)
; disagree on some input — the query the synthesis loop poses each round.
(set-logic QF_BV)
(set-info :status sat)
(declare-const x (_ BitVec 8))
(assert (distinct (bvor x (_ bv1 8)) (bvadd x (_ bv1 8))))
(check-sat)
(get-model)
(exit)
