; SMT-LIB division-by-zero semantics: x udiv 0 is all-ones for every x.
(set-logic QF_BV)
(set-info :status unsat)
(declare-const x (_ BitVec 8))
(assert (distinct (bvudiv x (_ bv0 8)) #xff))
(check-sat)
(exit)
