; Splitting a word into nibbles and concatenating them is the identity.
(set-logic QF_BV)
(set-info :status unsat)
(declare-const x (_ BitVec 8))
(assert (distinct x (concat ((_ extract 7 4) x) ((_ extract 3 0) x))))
(check-sat)
(exit)
