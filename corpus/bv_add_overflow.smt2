; Unsigned increment can wrap: x + 1 < x has the model x = 0xff.
(set-logic QF_BV)
(set-info :status sat)
(declare-const x (_ BitVec 8))
(assert (bvult (bvadd x (_ bv1 8)) x))
(check-sat)
(get-model)
(exit)
