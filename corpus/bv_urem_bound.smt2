; For a nonzero divisor the remainder is strictly below it.
(set-logic QF_BV)
(set-info :status unsat)
(declare-const x (_ BitVec 8))
(declare-const y (_ BitVec 8))
(assert (distinct y #x00))
(assert (bvuge (bvurem x y) y))
(check-sat)
(exit)
