; Left shift by one is multiplication by two.
(set-logic QF_BV)
(set-info :status unsat)
(declare-const x (_ BitVec 8))
(assert (distinct (bvshl x (_ bv1 8)) (bvmul x (_ bv2 8))))
(check-sat)
(exit)
