; Commutativity of bit-vector addition: no 16-bit counterexample exists.
(set-logic QF_BV)
(set-info :status unsat)
(declare-const x (_ BitVec 16))
(declare-const y (_ BitVec 16))
(assert (distinct (bvadd x y) (bvadd y x)))
(check-sat)
(exit)
