; x xor x is always zero.
(set-logic QF_BV)
(set-info :status unsat)
(declare-const x (_ BitVec 32))
(assert (distinct (bvxor x x) #x00000000))
(check-sat)
(exit)
