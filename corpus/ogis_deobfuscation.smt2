; The paper's deobfuscation identity (Sec. 4): (x & y) + (x | y) = x + y.
; Equivalence of the obfuscated and clean programs — refutation is unsat.
(set-logic QF_BV)
(set-info :status unsat)
(declare-const x (_ BitVec 16))
(declare-const y (_ BitVec 16))
(assert (distinct (bvadd (bvand x y) (bvor x y)) (bvadd x y)))
(check-sat)
(exit)
