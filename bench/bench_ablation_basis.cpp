// Ablation A: the value of basis paths. For modexp with k-bit exponents the
// path count grows as 2^k while the basis stays at k+1 — this sweep prints
// measurement cost and prediction error for basis-path learning versus the
// exhaustive alternative the paper's approach avoids.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "gametime/gametime.hpp"
#include "ir/parser.hpp"
#include "ir/transform.hpp"

namespace {

using namespace sciduction;

std::string modexp_source(int bits) {
    return R"(
int modexp(int base, int exponent) {
  int result = 1;
  int b = base;
  int i = 0;
  while (i < )" + std::to_string(bits) + ") bound " + std::to_string(bits) + R"( {
    if (exponent & 1) { result = (result * b) % 1000003; }
    b = (b * b) % 1000003;
    exponent = exponent >> 1;
    i = i + 1;
  }
  return result;
}
)";
}

struct sized_pipeline {
    ir::program p;
    ir::function f;
    ir::cfg g;

    explicit sized_pipeline(int bits)
        : p(ir::parse_program(modexp_source(bits))),
          f(ir::resolve_static_branches(ir::unroll_loops(*p.find_function("modexp")), p.width)),
          g(ir::cfg::build(p, f)) {}
};

void print_report() {
    std::printf("=== Ablation A: basis paths vs exhaustive measurement (modexp sweep) ===\n");
    std::printf("%5s %8s %7s %13s %13s %10s %10s\n", "bits", "paths", "basis", "measurements",
                "exhaustive", "mean|err|", "rel err");
    for (int bits = 4; bits <= 10; ++bits) {
        sized_pipeline px(bits);
        smt::term_manager tm;
        auto basis = gametime::extract_basis_paths(px.g, tm);
        gametime::sarm_platform platform(px.p, px.f);
        auto model = gametime::learn_timing_model(basis, platform);

        // Prediction error over every path (measured once from cold).
        double sum_err = 0;
        double sum_meas = 0;
        const std::uint64_t n = 1ULL << bits;
        for (std::uint64_t e = 0; e < n; ++e) {
            auto trace = px.g.trace({7, e});
            double pred = gametime::predict_path_time(px.g, model, trace.taken);
            double meas = static_cast<double>(platform.measure_cold({7, e}));
            sum_err += std::abs(pred - meas);
            sum_meas += meas;
        }
        std::printf("%5d %8llu %7zu %13d %13llu %10.2f %9.2f%%\n", bits,
                    (unsigned long long)px.g.count_paths(), basis.paths.size(),
                    model.measurements, (unsigned long long)n, sum_err / double(n),
                    100.0 * sum_err / sum_meas);
    }
    std::printf("(measurements grow linearly with the basis; exhaustive grows as 2^k)\n\n");
}

void BM_pipeline_by_bits(benchmark::State& state) {
    int bits = static_cast<int>(state.range(0));
    sized_pipeline px(bits);
    for (auto _ : state) {
        smt::term_manager tm;
        auto basis = gametime::extract_basis_paths(px.g, tm);
        gametime::sarm_platform platform(px.p, px.f);
        auto model = gametime::learn_timing_model(basis, platform);
        benchmark::DoNotOptimize(model.measurements);
    }
}
BENCHMARK(BM_pipeline_by_bits)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    print_report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
