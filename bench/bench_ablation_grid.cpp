// Ablation B: guard-grid resolution versus accuracy and simulator load for
// the transmission synthesis. The structure hypothesis fixes guards to grid
// hyperboxes; this sweep shows the accuracy/cost trade-off of that choice
// (the analytic gear-2 band edge is 20 - 6.7086 = 13.2914).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "hybrid/transmission.hpp"

namespace {

using namespace sciduction;
using namespace sciduction::hybrid;

synthesis_config config_for_grid(double grid) {
    synthesis_config cfg;
    cfg.sim.dt = 2e-3;
    cfg.sim.t_max = 200;
    cfg.learner.grid = {50.0, grid};
    cfg.learner.coarse_step = {1000.0, 1.0};
    return cfg;
}

void print_report() {
    std::printf("=== Ablation B: hyperbox grid resolution (transmission) ===\n");
    const double analytic_lo = 20.0 - std::sqrt(-64.0 * std::log(0.49 / 0.99));
    std::printf("analytic gear-2 lower band edge: %.4f\n", analytic_lo);
    std::printf("%8s %10s %10s %12s %9s\n", "grid", "g12U.lo", "error", "sim queries", "passes");
    for (double grid : {1.0, 0.5, 0.1, 0.05, 0.01}) {
        mds sys = build_transmission();
        auto result = synthesize_switching_logic(sys, config_for_grid(grid));
        const auto& g12u =
            sys.transitions[static_cast<std::size_t>(sys.find_transition("g12U"))].guard;
        double lo = g12u.empty() ? -1 : g12u.lo[1];
        std::printf("%8.2f %10.2f %10.4f %12llu %9d\n", grid, lo, std::abs(lo - analytic_lo),
                    (unsigned long long)result.simulator_queries, result.passes);
    }
    std::printf("(cost grows ~log(1/grid) per corner thanks to bisection; accuracy is "
                "grid-limited — the validity condition of H in Sec. 5.2)\n\n");
}

void BM_synthesis_by_grid(benchmark::State& state) {
    double grid = 1.0 / static_cast<double>(state.range(0));
    for (auto _ : state) {
        mds sys = build_transmission();
        auto result = synthesize_switching_logic(sys, config_for_grid(grid));
        benchmark::DoNotOptimize(result.simulator_queries);
    }
}
BENCHMARK(BM_synthesis_by_grid)->Arg(1)->Arg(10)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    print_report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
