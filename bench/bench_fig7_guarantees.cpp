// Reproduces paper Fig. 7: the guarantee flowchart of the program-synthesis
// application. Three observable outcomes:
//   (1) sufficient library (valid H)  -> the correct program;
//   (2) insufficient library, the I/O pairs expose it -> infeasibility;
//   (3) insufficient library, the pairs do NOT expose it -> a program
//       consistent with everything seen, yet wrong on unseen inputs.
// The report classifies a run per branch; benchmarks time the two decisive
// queries.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "ogis/benchmarks.hpp"

namespace {

using namespace sciduction;
using namespace sciduction::ogis;

/// Oracle outside C_H for library {xor}: f(x) = x & ~1.
class masked_identity_oracle final : public spec_oracle {
public:
    io_vector query(const io_vector& in) override { return {in[0] & ~1ULL & 0xff}; }
};

void print_report() {
    std::printf("=== Fig. 7: conditional guarantees of component-based synthesis ===\n");

    // Branch (1): sufficient library.
    {
        auto bench = benchmark_p2_multiply45();
        bench.config.width = 8;
        auto out = run_benchmark(bench);
        bool correct = out.status == core::loop_status::success;
        for (std::uint64_t x = 0; correct && x < 256; ++x)
            correct = out.program->eval(bench.config.library, {x})[0] == ((x * 45) & 0xff);
        std::printf("[valid H]   library {shl2,add,shl3,add} for x*45: %s\n",
                    correct ? "correct program (as guaranteed)" : "UNEXPECTED");
    }

    // Branch (2): insufficient library, exposed by the examples.
    {
        auto bench = benchmark_p2_multiply45();
        bench.config.width = 8;
        bench.config.library = {comp_xor()};
        auto out = run_benchmark(bench);
        std::printf("[invalid H] library {xor} for x*45: %s\n",
                    out.status == core::loop_status::unrealizable
                        ? "infeasibility reported (as allowed)"
                        : "other outcome");
    }

    // Branch (3): invalid H can yield a consistent-but-incorrect program:
    // the synthesizer converges on some program in C_H agreeing with every
    // I/O pair it saw, yet the oracle differs elsewhere — exactly the
    // paper's caveat that soundness is conditional on valid(H).
    {
        synthesis_config cfg;
        cfg.width = 8;
        cfg.num_inputs = 1;
        cfg.num_outputs = 1;
        cfg.library = {comp_xor()};
        cfg.initial_examples = 1;
        cfg.seed = 11;  // seed whose sampled behaviours stay consistent
        masked_identity_oracle oracle;
        auto out = synthesize(cfg, oracle);
        if (out.status == core::loop_status::success) {
            int mismatches = 0;
            for (std::uint64_t x = 0; x < 256; ++x)
                if (out.program->eval(cfg.library, {x})[0] != ((x & ~1ULL) & 0xff)) ++mismatches;
            std::printf("[invalid H] library {xor} for x&~1: synthesized a program consistent "
                        "with all %llu queries, wrong on %d/256 inputs\n",
                        (unsigned long long)out.stats.oracle_queries, mismatches);
        } else {
            std::printf("[invalid H] library {xor} for x&~1: infeasibility reported instead "
                        "(also a permitted branch)\n");
        }
    }
    std::printf("\n");
}

void BM_sufficient_library(benchmark::State& state) {
    auto bench = benchmark_isolate_rightmost();
    bench.config.width = 8;
    for (auto _ : state) {
        auto out = run_benchmark(bench);
        benchmark::DoNotOptimize(out.status);
    }
}
BENCHMARK(BM_sufficient_library)->Unit(benchmark::kMillisecond);

void BM_insufficient_library(benchmark::State& state) {
    auto bench = benchmark_p2_multiply45();
    bench.config.width = 8;
    bench.config.library = {comp_xor()};
    for (auto _ : state) {
        auto out = run_benchmark(bench);
        benchmark::DoNotOptimize(out.status);
    }
}
BENCHMARK(BM_insufficient_library)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    print_report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
