// Reproduces paper Table 1: the three demonstrated applications of
// sciduction, each with its structure hypothesis H, inductive engine I, and
// deductive engine D — here run live, with measured statistics attached
// (plus the invariant-generation instance of Sec. 2.4.1 as a fourth row).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <sstream>

#include "gametime/gametime.hpp"
#include "hybrid/transmission.hpp"
#include "invgen/invgen.hpp"
#include "ir/parser.hpp"
#include "ir/transform.hpp"
#include "ogis/benchmarks.hpp"

namespace {

using namespace sciduction;

const char* modexp_src = R"(
int modexp(int base, int exponent) {
  int result = 1;
  int b = base;
  int i = 0;
  while (i < 8) bound 8 {
    if (exponent & 1) { result = (result * b) % 1000003; }
    b = (b * b) % 1000003;
    exponent = exponent >> 1;
    i = i + 1;
  }
  return result;
}
)";

void row(const char* app, const char* h, const char* i, const char* d, const std::string& stats) {
    std::printf("%-24s | %-28s | %-26s | %-26s | %s\n", app, h, i, d, stats.c_str());
}

void print_report() {
    std::printf("=== Table 1: three demonstrated applications of sciduction ===\n");
    std::printf("%-24s | %-28s | %-26s | %-26s | %s\n", "application", "H (structure hyp.)",
                "I (inductive engine)", "D (deductive engine)", "measured");
    std::printf("%s\n", std::string(150, '-').c_str());

    // --- timing analysis (Sec. 3) ---
    {
        ir::program p = ir::parse_program(modexp_src);
        ir::function f = ir::resolve_static_branches(
            ir::unroll_loops(*p.find_function("modexp")), p.width);
        ir::cfg g = ir::cfg::build(p, f);
        smt::term_manager tm;
        auto basis = gametime::extract_basis_paths(g, tm);
        gametime::sarm_platform platform(p, f);
        auto model = gametime::learn_timing_model(basis, platform);
        auto wcet = gametime::predict_wcet(g, model, tm);
        std::ostringstream os;
        os << basis.paths.size() << " basis paths predict " << g.count_paths()
           << " paths; WCET exponent " << (wcet->test_args[1] & 0xff);
        row("Timing analysis (S3)", "(w,pi) model & constraints", "game-theoretic online learning",
            "SMT: basis-path tests", os.str());
    }

    // --- program synthesis (Sec. 4) ---
    {
        auto bench = ogis::benchmark_p2_multiply45();
        auto outcome = ogis::run_benchmark(bench);
        std::ostringstream os;
        os << "P2 in " << outcome.stats.iterations << " iteration(s), "
           << outcome.stats.oracle_queries << " oracle queries, "
           << (outcome.status == core::loop_status::success ? "correct" : "failed");
        row("Program synthesis (S4)", "loop-free programs over L", "distinguishing-input learning",
            "SMT: program/input gen", os.str());
    }

    // --- switching logic synthesis (Sec. 5) ---
    {
        hybrid::transmission_params params;
        hybrid::mds sys = hybrid::build_transmission(params);
        hybrid::synthesis_config cfg;
        cfg.sim.dt = 2e-3;
        cfg.learner.grid = {50.0, 0.01};
        cfg.learner.coarse_step = {1000.0, 1.0};
        auto result = hybrid::synthesize_switching_logic(sys, cfg);
        auto trace = hybrid::run_fig10_trace(sys, params);
        std::ostringstream os;
        os << "12 guards in " << result.passes << " passes, " << result.simulator_queries
           << " simulator queries; trace " << (trace.safety_held ? "safe" : "UNSAFE");
        row("Switching logic (S5)", "guards as hyperboxes", "hyperbox corner learning",
            "numerical ODE simulation", os.str());
    }

    // --- invariant generation (Sec. 2.4.1 extension) ---
    {
        aig::aig g;
        auto b0 = g.add_latch(false);
        auto b1 = g.add_latch(false);
        auto b2 = g.add_latch(false);
        auto c0 = b0;
        auto s1 = g.add_xor(b1, c0);
        auto c1 = g.add_and(b1, c0);
        auto s2 = g.add_xor(b2, c1);
        auto eq5 = g.add_and(g.add_and(b2, aig::negate(b1)), b0);
        g.set_latch_next(b0, g.add_and(aig::negate(eq5), aig::negate(b0)));
        g.set_latch_next(b1, g.add_and(aig::negate(eq5), s1));
        g.set_latch_next(b2, g.add_and(aig::negate(eq5), s2));
        auto inv = invgen::generate_invariants(g);
        std::ostringstream os;
        os << inv.candidates_after_simulation << " candidates -> " << inv.proven.size()
           << " proven in " << inv.induction_iterations << " induction rounds";
        row("Invariant gen (S2.4.1)", "constants/equivalences", "simulation pruning",
            "SAT 1-induction", os.str());
    }
    std::printf("\n");
}

void BM_all_three_pipelines(benchmark::State& state) {
    for (auto _ : state) {
        // Smallest representative of each pipeline back to back.
        ir::program p = ir::parse_program(modexp_src);
        ir::function f = ir::resolve_static_branches(
            ir::unroll_loops(*p.find_function("modexp")), p.width);
        ir::cfg g = ir::cfg::build(p, f);
        smt::term_manager tm;
        auto basis = gametime::extract_basis_paths(g, tm);
        benchmark::DoNotOptimize(basis.paths.size());

        auto bench = ogis::benchmark_isolate_rightmost();
        bench.config.width = 8;
        auto outcome = ogis::run_benchmark(bench);
        benchmark::DoNotOptimize(outcome.status);

        hybrid::transmission_params params;
        hybrid::mds sys = hybrid::build_transmission(params);
        hybrid::synthesis_config cfg;
        cfg.sim.dt = 5e-3;
        cfg.learner.grid = {50.0, 0.01};
        cfg.learner.coarse_step = {1000.0, 1.0};
        auto result = hybrid::synthesize_switching_logic(sys, cfg);
        benchmark::DoNotOptimize(result.passes);
    }
}
BENCHMARK(BM_all_three_pipelines)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    print_report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
