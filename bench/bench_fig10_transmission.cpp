// Reproduces paper Eq. (3), Eq. (4) and Fig. 10: switching-logic synthesis
// for the 3-gear automatic transmission, and the efficiency/speed time
// series of the synthesized closed loop.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "hybrid/transmission.hpp"

namespace {

using namespace sciduction;
using namespace sciduction::hybrid;

synthesis_config make_config(double dwell) {
    synthesis_config cfg;
    cfg.sim.dt = 2e-3;
    cfg.sim.t_max = 200;
    cfg.sim.min_dwell = dwell;
    cfg.learner.grid = {50.0, 0.01};
    cfg.learner.coarse_step = {1000.0, 1.0};
    return cfg;
}

void print_guards(const mds& sys, const char* title, const char* paper[12]) {
    std::printf("%s\n%-6s %-22s %-22s\n", title, "guard", "synthesized", "paper");
    for (std::size_t i = 0; i < sys.transitions.size(); ++i) {
        const auto& tr = sys.transitions[i];
        char ours[64];
        if (tr.guard.empty()) {
            std::snprintf(ours, sizeof ours, "EMPTY");
        } else if (tr.guard.lo[1] == tr.guard.hi[1]) {
            std::snprintf(ours, sizeof ours, "omega = %.2f", tr.guard.lo[1]);
        } else {
            std::snprintf(ours, sizeof ours, "%.2f <= omega <= %.2f", tr.guard.lo[1],
                          tr.guard.hi[1]);
        }
        std::printf("%-6s %-22s %-22s\n", tr.name.c_str(), ours, paper[i]);
    }
    std::printf("\n");
}

void print_report() {
    transmission_params params;

    // --- Eq. (3): pure safety ---
    {
        mds sys = build_transmission(params);
        auto result = synthesize_switching_logic(sys, make_config(0.0));
        std::printf("=== Eq. (3): safety-only switching logic "
                    "(passes %d, %llu simulator queries, converged %s) ===\n",
                    result.passes, (unsigned long long)result.simulator_queries,
                    result.converged ? "yes" : "NO");
        const char* paper[12] = {
            "0 <= omega <= 16.70",  "0 <= omega <= 16.70",  "13.29 <= omega <= 26.70",
            "13.29 <= omega <= 26.70", "23.29 <= omega <= 36.70", "23.29 <= omega <= 36.70",
            "23.29 <= omega <= 36.70", "13.29 <= omega <= 26.70", "13.29 <= omega <= 26.70",
            "0 <= omega <= 16.70",  "0 <= omega <= 16.70",  "theta=1700, omega=0"};
        print_guards(sys, "", paper);

        // --- Fig. 10: closed-loop trace ---
        auto trace = run_fig10_trace(sys, params, 0.0, 2.0);
        std::printf("=== Fig. 10: efficiency and speed with changing gears ===\n");
        std::printf("mode sequence:");
        for (const auto& m : trace.mode_sequence) std::printf(" %s", m.c_str());
        std::printf("\nt, mode, theta, omega, eta\n");
        for (const auto& s : trace.samples)
            std::printf("%6.1f, %-3s, %8.1f, %6.2f, %.3f\n", s.t,
                        sys.modes[static_cast<std::size_t>(s.mode)].name.c_str(), s.theta,
                        s.omega, s.eta);
        bool eta_ok = true;
        for (const auto& s : trace.samples)
            if (s.mode != 0 && s.omega >= 5.0 && s.eta < 0.5) eta_ok = false;
        std::printf("safety phi_S held: %s;  eta >= 0.5 whenever omega >= 5: %s\n",
                    trace.safety_held ? "yes" : "NO", eta_ok ? "yes" : "NO");
        std::printf("reached theta = %.1f (theta_max %.0f) with omega = 0 at t = %.1f s\n\n",
                    trace.final_theta, params.theta_max, trace.total_time);
    }

    // --- Eq. (4): 5-second dwell per gear ---
    {
        mds sys = build_transmission(params);
        auto result = synthesize_switching_logic(sys, make_config(5.0));
        std::printf("=== Eq. (4): with 5 s dwell-time requirement "
                    "(passes %d, converged %s) ===\n",
                    result.passes, result.converged ? "yes" : "NO");
        const char* paper[12] = {
            "omega = 0",               "omega = 0",               "13.29 <= omega <= 23.42",
            "13.29 <= omega <= 23.42", "26.70 <= omega <= 33.42", "23.29 <= omega <= 33.42",
            "omega = 36.70",           "16.58 <= omega <= 26.70", "omega = 26.70",
            "1.31 <= omega <= 16.70",  "1.31 <= omega <= 16.70",  "theta=1700, omega=0"};
        print_guards(sys, "", paper);
        auto trace = run_fig10_trace(sys, params, 5.0, 5.0);
        std::printf("dwell-variant trace: min gear dwell %.2f s (required 5.0), safety %s\n\n",
                    trace.min_mode_dwell, trace.safety_held ? "held" : "VIOLATED");
    }
}

void BM_synthesize_safety(benchmark::State& state) {
    transmission_params params;
    for (auto _ : state) {
        mds sys = build_transmission(params);
        auto result = synthesize_switching_logic(sys, make_config(0.0));
        benchmark::DoNotOptimize(result.simulator_queries);
    }
}
BENCHMARK(BM_synthesize_safety)->Unit(benchmark::kMillisecond);

void BM_synthesize_dwell(benchmark::State& state) {
    transmission_params params;
    for (auto _ : state) {
        mds sys = build_transmission(params);
        auto result = synthesize_switching_logic(sys, make_config(5.0));
        benchmark::DoNotOptimize(result.simulator_queries);
    }
}
BENCHMARK(BM_synthesize_dwell)->Unit(benchmark::kMillisecond);

void BM_fig10_trace(benchmark::State& state) {
    transmission_params params;
    mds sys = build_transmission(params);
    synthesize_switching_logic(sys, make_config(0.0));
    for (auto _ : state) {
        auto trace = run_fig10_trace(sys, params);
        benchmark::DoNotOptimize(trace.final_theta);
    }
}
BENCHMARK(BM_fig10_trace)->Unit(benchmark::kMillisecond);

void BM_reachability_oracle_query(benchmark::State& state) {
    transmission_params params;
    mds sys = build_transmission(params);
    synthesize_switching_logic(sys, make_config(0.0));
    sim_config cfg;
    cfg.dt = 2e-3;
    double omega = 0;
    for (auto _ : state) {
        bool safe = label_entry_state(sys, 2, {0.0, 14.0 + omega}, cfg);
        omega = omega > 10 ? 0 : omega + 0.37;
        benchmark::DoNotOptimize(safe);
    }
}
BENCHMARK(BM_reachability_oracle_query)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    print_report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
