// Reproduces paper Fig. 8: oracle-guided deobfuscation of P1 (interchange)
// and P2 (multiply-by-45), plus the extra bit-trick benchmarks. The report
// prints each resynthesized program with its statistics (the paper reports
// "both programs were deobfuscated in less than half a second"); the
// registered benchmarks time synthesis per width so the solver-scaling
// shape is visible.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "ogis/benchmarks.hpp"

namespace {

using namespace sciduction;
using namespace sciduction::ogis;

void print_report() {
    std::printf("=== Fig. 8: program deobfuscation by oracle-guided synthesis ===\n");
    std::printf("%-22s %6s %9s %6s %8s %8s\n", "benchmark", "width", "time(s)", "iters",
                "oracleQ", "status");
    for (const auto& bench : all_benchmarks()) {
        auto outcome = run_benchmark(bench);
        const char* status =
            outcome.status == core::loop_status::success ? "ok" : "FAILED";
        std::printf("%-22s %6u %9.3f %6d %8llu %8s\n", bench.name.c_str(), bench.config.width,
                    outcome.stats.elapsed_seconds, outcome.stats.iterations,
                    (unsigned long long)outcome.stats.oracle_queries, status);
        if (outcome.program) {
            std::printf("  resynthesized program:\n");
            std::string listing = outcome.program->to_string(bench.config.library);
            // Indent each line.
            std::size_t start = 0;
            while (start < listing.size()) {
                std::size_t end = listing.find('\n', start);
                if (end == std::string::npos) end = listing.size();
                std::printf("    %s\n", listing.substr(start, end - start).c_str());
                start = end + 1;
            }
        }
    }
    std::printf("\n");
}

void BM_p1_interchange(benchmark::State& state) {
    auto bench = benchmark_p1_interchange();
    bench.config.width = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        auto outcome = run_benchmark(bench);
        if (outcome.status != core::loop_status::success) state.SkipWithError("failed");
        benchmark::DoNotOptimize(outcome.program);
    }
}
BENCHMARK(BM_p1_interchange)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_p2_multiply45(benchmark::State& state) {
    auto bench = benchmark_p2_multiply45();
    bench.config.width = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        auto outcome = run_benchmark(bench);
        if (outcome.status != core::loop_status::success) state.SkipWithError("failed");
        benchmark::DoNotOptimize(outcome.program);
    }
}
BENCHMARK(BM_p2_multiply45)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_bit_tricks(benchmark::State& state) {
    auto benches = all_benchmarks();
    auto bench = benches[static_cast<std::size_t>(state.range(0))];
    bench.config.width = 16;
    for (auto _ : state) {
        auto outcome = run_benchmark(bench);
        if (outcome.status != core::loop_status::success) state.SkipWithError("failed");
        benchmark::DoNotOptimize(outcome.program);
    }
}
BENCHMARK(BM_bit_tricks)->Arg(2)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    print_report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
