// Reproduces paper Fig. 6: predicted vs. measured execution-time
// distribution of modexp (8-bit exponent, 256 paths) from only 9 measured
// basis paths, on the SARM platform (StrongARM-1100 substitute).
//
// The report prints the two histograms side by side (the paper's bar
// chart as rows) plus the WCET prediction; the registered benchmarks time
// the pipeline stages.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "gametime/gametime.hpp"
#include "ir/parser.hpp"
#include "ir/transform.hpp"
#include "util/histogram.hpp"

namespace {

using namespace sciduction;

const char* modexp_src = R"(
int modexp(int base, int exponent) {
  int result = 1;
  int b = base;
  int i = 0;
  while (i < 8) bound 8 {
    if (exponent & 1) { result = (result * b) % 1000003; }
    b = (b * b) % 1000003;
    exponent = exponent >> 1;
    i = i + 1;
  }
  return result;
}
)";

struct pipeline {
    ir::program p;
    ir::function f;
    ir::cfg g;
    smt::term_manager tm;

    pipeline()
        : p(ir::parse_program(modexp_src)),
          f(ir::resolve_static_branches(ir::unroll_loops(*p.find_function("modexp")), p.width)),
          g(ir::cfg::build(p, f)) {}
};

void run_protocol(pipeline& px, double fill, const char* title) {
    // fill == 0 reproduces the paper's protocol: a fixed (cold) starting
    // environment state, as in problem <TA> ("a fixed starting state of E")
    // and the Fig. 6 experiment on SimIt-ARM. fill > 0 turns on the
    // adversarial state perturbation of the (w, pi) model.
    gametime::sarm_platform platform(px.p, px.f, {}, 20120604, fill);
    auto basis = gametime::extract_basis_paths(px.g, px.tm);
    auto model = gametime::learn_timing_model(basis, platform);

    util::histogram predicted(20);
    util::histogram measured(20);
    double max_pred = -1;
    std::uint64_t wcet_exponent = 0;
    double sum_abs_err = 0;
    for (std::uint64_t e = 0; e < 256; ++e) {
        auto trace = px.g.trace({7, e});
        double pred = gametime::predict_path_time(px.g, model, trace.taken);
        std::uint64_t meas = platform.measure({7, e});
        predicted.add(static_cast<std::int64_t>(pred + 0.5));
        measured.add(static_cast<std::int64_t>(meas));
        sum_abs_err += std::abs(pred - double(meas));
        if (pred > max_pred) {
            max_pred = pred;
            wcet_exponent = e;
        }
    }
    std::printf("--- %s ---\n", title);
    std::printf("measurements used for learning: %d\n", model.measurements);
    std::printf("%-14s %10s %10s\n", "cycles (bin)", "predicted", "measured");
    for (const auto& [lo, n] : measured.bins()) {
        std::printf("%6lld..%-6lld %10lld %10lld\n", (long long)lo,
                    (long long)(lo + measured.bin_width() - 1),
                    (long long)predicted.count_at(lo), (long long)n);
    }
    std::printf("total-variation distance: %.4f   mean |error|: %.2f cycles\n",
                predicted.total_variation_distance(measured), sum_abs_err / 256.0);
    auto wcet = gametime::predict_wcet(px.g, model, px.tm);
    std::printf("WCET: predicted %.1f cycles at exponent %llu (paper: exponent 255); "
                "per-path argmax: exponent %llu\n\n",
                wcet->predicted_cycles, (unsigned long long)(wcet->test_args[1] & 0xff),
                (unsigned long long)wcet_exponent);
}

void print_report() {
    pipeline px;
    std::printf("=== Fig. 6: modexp execution-time distribution (predicted vs measured) ===\n");
    std::printf("paths: %llu, basis paths measured: 9 expected (paper: 256 / 9)\n\n",
                (unsigned long long)px.g.count_paths());
    run_protocol(px, 0.0,
                 "paper protocol: fixed starting environment state (SimIt-style)");
    run_protocol(px, 0.6,
                 "adversarial protocol: randomized starting cache states (the pi term)");
}

void BM_basis_extraction(benchmark::State& state) {
    pipeline px;
    for (auto _ : state) {
        smt::term_manager tm;
        auto basis = gametime::extract_basis_paths(px.g, tm);
        benchmark::DoNotOptimize(basis.paths.size());
    }
}
BENCHMARK(BM_basis_extraction)->Unit(benchmark::kMillisecond);

void BM_learn_model(benchmark::State& state) {
    pipeline px;
    auto basis = gametime::extract_basis_paths(px.g, px.tm);
    gametime::sarm_platform platform(px.p, px.f);
    for (auto _ : state) {
        auto model = gametime::learn_timing_model(basis, platform);
        benchmark::DoNotOptimize(model.measurements);
    }
}
BENCHMARK(BM_learn_model)->Unit(benchmark::kMillisecond);

void BM_predict_all_256_paths(benchmark::State& state) {
    pipeline px;
    auto basis = gametime::extract_basis_paths(px.g, px.tm);
    gametime::sarm_platform platform(px.p, px.f);
    auto model = gametime::learn_timing_model(basis, platform);
    auto paths = px.g.enumerate_paths();
    for (auto _ : state) {
        double acc = 0;
        for (const auto& path : paths) acc += gametime::predict_path_time(px.g, model, path);
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_predict_all_256_paths)->Unit(benchmark::kMillisecond);

void BM_platform_measurement(benchmark::State& state) {
    pipeline px;
    gametime::sarm_platform platform(px.p, px.f);
    std::uint64_t e = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(platform.measure({7, e++ & 0xff}));
    }
}
BENCHMARK(BM_platform_measurement)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    print_report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
