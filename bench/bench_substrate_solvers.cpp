// Substrate benchmarks: throughput of the deductive engines every
// application sits on — the CDCL SAT core, the QF_BV bit-blaster, and the
// AIG parallel simulator.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "aig/aig.hpp"
#include "sat/solver.hpp"
#include "smt/solver.hpp"
#include "util/rng.hpp"

namespace {

using namespace sciduction;

void BM_sat_pigeonhole(benchmark::State& state) {
    const int holes = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sat::solver s;
        std::vector<std::vector<sat::var>> x(static_cast<std::size_t>(holes) + 1,
                                             std::vector<sat::var>(static_cast<std::size_t>(holes)));
        for (auto& row : x)
            for (auto& v : row) v = s.new_var();
        for (auto& row : x) {
            sat::clause_lits c;
            for (auto v : row) c.push_back(sat::mk_lit(v));
            s.add_clause(c);
        }
        for (int h = 0; h < holes; ++h)
            for (int p1 = 0; p1 <= holes; ++p1)
                for (int p2 = p1 + 1; p2 <= holes; ++p2)
                    s.add_clause(~sat::mk_lit(x[static_cast<std::size_t>(p1)][static_cast<std::size_t>(h)]),
                                 ~sat::mk_lit(x[static_cast<std::size_t>(p2)][static_cast<std::size_t>(h)]));
        auto r = s.solve();
        if (r != sat::solve_result::unsat) state.SkipWithError("pigeonhole must be unsat");
        benchmark::DoNotOptimize(s.stats().conflicts);
    }
}
BENCHMARK(BM_sat_pigeonhole)->Arg(6)->Arg(7)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_sat_random_3sat(benchmark::State& state) {
    const int nv = static_cast<int>(state.range(0));
    const int nc = static_cast<int>(4.0 * nv);  // below threshold: mostly sat
    util::rng r(99);
    for (auto _ : state) {
        sat::solver s;
        for (int i = 0; i < nv; ++i) s.new_var();
        for (int i = 0; i < nc; ++i) {
            sat::clause_lits c;
            for (int j = 0; j < 3; ++j)
                c.push_back(sat::mk_lit(
                    static_cast<sat::var>(r.next_below(static_cast<std::uint64_t>(nv))),
                    r.next_bool()));
            s.add_clause(c);
        }
        benchmark::DoNotOptimize(s.solve());
    }
}
BENCHMARK(BM_sat_random_3sat)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_smt_commutativity_proof(benchmark::State& state) {
    // Prove x + y == y + x at the given width by refutation (UNSAT).
    const unsigned width = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        smt::term_manager tm;
        smt::term x = tm.mk_bv_var("x", width);
        smt::term y = tm.mk_bv_var("y", width);
        smt::smt_solver s(tm);
        // Defeat the commutative-normalization rewrite with an obfuscated rhs.
        smt::term lhs = tm.mk_bvadd(x, y);
        smt::term rhs = tm.mk_bvsub(tm.mk_bvadd(tm.mk_bvadd(y, x), y), y);
        s.assert_term(tm.mk_distinct(lhs, rhs));
        if (s.check() != smt::check_result::unsat) state.SkipWithError("must be unsat");
    }
}
BENCHMARK(BM_smt_commutativity_proof)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_smt_mul_distributivity(benchmark::State& state) {
    // x*(y+z) == x*y + x*z — multiplier-heavy UNSAT instance.
    const unsigned width = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        smt::term_manager tm;
        smt::term x = tm.mk_bv_var("x", width);
        smt::term y = tm.mk_bv_var("y", width);
        smt::term z = tm.mk_bv_var("z", width);
        smt::smt_solver s(tm);
        s.assert_term(tm.mk_distinct(tm.mk_bvmul(x, tm.mk_bvadd(y, z)),
                                     tm.mk_bvadd(tm.mk_bvmul(x, y), tm.mk_bvmul(x, z))));
        if (s.check() != smt::check_result::unsat) state.SkipWithError("must be unsat");
    }
}
// Width 8 already takes ~1 min per proof on the from-scratch CDCL core
// (three 8-bit multipliers in one UNSAT query); the sweep stops at 6 to
// keep the suite snappy — the scaling trend is visible from 4 -> 6.
BENCHMARK(BM_smt_mul_distributivity)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_smt_path_feasibility(benchmark::State& state) {
    // The query shape GameTime issues: a conjunction of branch constraints.
    for (auto _ : state) {
        smt::term_manager tm;
        smt::term x = tm.mk_bv_var("x", 32);
        smt::smt_solver s(tm);
        for (int i = 0; i < 8; ++i) {
            smt::term bit = tm.mk_bvand(tm.mk_bvlshr(x, tm.mk_bv_const(32, i)),
                                        tm.mk_bv_const(32, 1));
            s.assert_term(tm.mk_eq(bit, tm.mk_bv_const(32, i % 2)));
        }
        if (s.check() != smt::check_result::sat) state.SkipWithError("must be sat");
        benchmark::DoNotOptimize(s.model_value(tm.mk_bv_var("x", 32)));
    }
}
BENCHMARK(BM_smt_path_feasibility)->Unit(benchmark::kMillisecond);

void BM_aig_parallel_simulation(benchmark::State& state) {
    // 64-way parallel random simulation of a shift-register + logic mesh.
    aig::aig g;
    std::vector<aig::literal> ins;
    for (int i = 0; i < 8; ++i) ins.push_back(g.add_input());
    std::vector<aig::literal> latches;
    for (int i = 0; i < 64; ++i) latches.push_back(g.add_latch(false));
    util::rng r(5);
    std::vector<aig::literal> pool = ins;
    pool.insert(pool.end(), latches.begin(), latches.end());
    for (int i = 0; i < 500; ++i) {
        aig::literal a = pool[r.next_below(pool.size())];
        aig::literal b = pool[r.next_below(pool.size())];
        pool.push_back(g.add_and(r.next_bool() ? a : aig::negate(a),
                                 r.next_bool() ? b : aig::negate(b)));
    }
    for (std::size_t i = 0; i < latches.size(); ++i)
        g.set_latch_next(latches[i], pool[pool.size() - 1 - i]);
    auto st = g.initial_state();
    std::vector<std::uint64_t> inputs(8);
    for (auto _ : state) {
        for (auto& w : inputs) w = r.next_u64();
        auto values = g.simulate_step(st, inputs);
        st = g.next_state(values);
        benchmark::DoNotOptimize(st[0]);
    }
    state.SetItemsProcessed(state.iterations() * 64);  // patterns per step
}
BENCHMARK(BM_aig_parallel_simulation);

}  // namespace

BENCHMARK_MAIN();
