// Substrate benchmarks: throughput of the deductive engines every
// application sits on — the CDCL SAT core, the QF_BV bit-blaster, and the
// AIG parallel simulator — plus the substrate layer on top of them
// (portfolio racing, query cache, batch dispatch).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "aig/aig.hpp"
#include "sat/dimacs.hpp"
#include "sat/pigeonhole.hpp"
#include "sat/solver.hpp"
#include "smt/solver.hpp"
#include "substrate/engine.hpp"
#include "substrate/portfolio.hpp"
#include "substrate/shard.hpp"
#include "util/rng.hpp"

namespace {

using namespace sciduction;
using sat::encode_pigeonhole;  // the shared hard-UNSAT family (sat/pigeonhole.hpp)

void BM_sat_pigeonhole(benchmark::State& state) {
    const int holes = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sat::solver s;
        encode_pigeonhole(s, holes);
        auto r = s.solve();
        if (r != sat::solve_result::unsat) state.SkipWithError("pigeonhole must be unsat");
        benchmark::DoNotOptimize(s.stats().conflicts);
    }
}
BENCHMARK(BM_sat_pigeonhole)->Arg(6)->Arg(7)->Arg(8)->Unit(benchmark::kMillisecond);

// Portfolio-vs-single on the same pigeonhole family: 4 diversified CDCL
// instances race on a thread pool; the first answer wins and cancels the
// rest. Compare against BM_sat_pigeonhole at equal hole counts. The win
// comes from two effects: genuine parallelism (needs cores) and min-over-
// strategies (a diversified member refutes faster than the baseline).
void BM_sat_pigeonhole_portfolio(benchmark::State& state) {
    const int holes = static_cast<int>(state.range(0));
    for (auto _ : state) {
        substrate::portfolio_config cfg;
        cfg.members = 4;
        cfg.threads = 4;
        auto outcome = substrate::race(
            [&](unsigned member) {
                auto b = std::make_unique<substrate::sat_backend>(
                    substrate::diversified_options(member));
                encode_pigeonhole(b->solver(), holes);
                return b;
            },
            cfg);
        if (!outcome.result.is_unsat()) state.SkipWithError("pigeonhole must be unsat");
        benchmark::DoNotOptimize(outcome.winner);
    }
}
BENCHMARK(BM_sat_pigeonhole_portfolio)->Arg(6)->Arg(7)->Arg(8)->Unit(benchmark::kMillisecond);

// Cube-and-conquer on the same pigeonhole family: lookahead splits the one
// hard query into a cube tree whose leaves solve independently — the
// "single hard query, many cores" scenario portfolio racing cannot cover.
// The counters expose total CPU conflicts: at depth 1-2 the cube total
// *undercuts* the single instance (measured here: PHP-7 ~4.9k vs ~5.9k,
// PHP-8 ~18.3k vs ~21.5k at depth 1) while exposing 2-4x parallelism;
// deeper trees trade extra total work for more parallel slack, the classic
// cube-and-conquer tradeoff (wall-clock wins need a multi-core runner —
// this container is 1-core, so compare the conflict counters).
void BM_sat_pigeonhole_sharded(benchmark::State& state) {
    const int holes = static_cast<int>(state.range(0));
    const unsigned depth = static_cast<unsigned>(state.range(1));
    std::uint64_t cube_conflicts = 0;
    std::uint64_t baseline_conflicts = 0;
    for (auto _ : state) {
        sat::solver prototype;
        encode_pigeonhole(prototype, holes);
        auto plan = substrate::generate_cubes(prototype, {.depth = depth});
        auto outcome = substrate::solve_cubes(
            [&] {
                auto b = std::make_unique<substrate::sat_backend>();
                encode_pigeonhole(b->solver(), holes);
                return b;
            },
            plan, /*threads=*/4);
        if (!outcome.result.is_unsat()) {
            state.SkipWithError("pigeonhole must be unsat");
            break;
        }
        cube_conflicts += outcome.stats.conflicts;
        state.PauseTiming();
        sat::solver single;
        encode_pigeonhole(single, holes);
        const bool single_unsat = single.solve() == sat::solve_result::unsat;
        baseline_conflicts += single.stats().conflicts;
        state.ResumeTiming();
        if (!single_unsat) {
            state.SkipWithError("pigeonhole must be unsat");
            break;
        }
    }
    state.counters["cube_conflicts"] = benchmark::Counter(
        static_cast<double>(cube_conflicts) / static_cast<double>(state.iterations()));
    state.counters["single_conflicts"] = benchmark::Counter(
        static_cast<double>(baseline_conflicts) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_sat_pigeonhole_sharded)
    ->Args({7, 1})
    ->Args({7, 2})
    ->Args({8, 1})
    ->Args({8, 3})
    ->Unit(benchmark::kMillisecond);

// Clause sharing across shard sibling pairs (ISSUE 3 acceptance numbers):
// PHP-8 at depth 2 with the tuned deterministic exchange from docs/TUNING.md
// vs. the same tree unshared. Both runs are *fully deterministic* (the
// deterministic-sharing discipline exchanges only at conflict-checkpoint
// barriers), so the counters are machine- and thread-count-independent:
// shared_conflicts ~19.9k vs unshared_conflicts ~22.3k, with the
// exported/imported/useful-import counters showing where the win comes
// from (useful = times an imported clause took part in conflict analysis).
void BM_sat_pigeonhole_shard_sharing(benchmark::State& state) {
    const int holes = static_cast<int>(state.range(0));
    const unsigned depth = static_cast<unsigned>(state.range(1));
    std::uint64_t shared_conflicts = 0;
    std::uint64_t unshared_conflicts = 0;
    substrate::sharing_counters counters;
    for (auto _ : state) {
        sat::solver prototype;
        encode_pigeonhole(prototype, holes);
        auto plan = substrate::generate_cubes(prototype, {.depth = depth, .probe_candidates = 8});
        auto factory = [&] {
            auto b = std::make_unique<substrate::sat_backend>();
            encode_pigeonhole(b->solver(), holes);
            return b;
        };
        substrate::sharing_config share;
        share.enabled = true;
        share.deterministic = true;
        share.slice_conflicts = 3000;
        share.max_clause_size = 16;
        share.max_lbd = 16;
        share.max_import_per_checkpoint = 64;
        auto shared = substrate::solve_cubes(factory, plan, /*threads=*/4, share);
        if (!shared.result.is_unsat()) {
            state.SkipWithError("pigeonhole must be unsat");
            break;
        }
        shared_conflicts += shared.stats.conflicts;
        counters.exported += shared.stats.sharing.exported;
        counters.imported += shared.stats.sharing.imported;
        counters.useful_imports += shared.stats.sharing.useful_imports;
        state.PauseTiming();
        auto unshared = substrate::solve_cubes(factory, plan, /*threads=*/4);
        unshared_conflicts += unshared.stats.conflicts;
        state.ResumeTiming();
        if (!unshared.result.is_unsat()) {
            state.SkipWithError("pigeonhole must be unsat");
            break;
        }
    }
    const auto iters = static_cast<double>(state.iterations());
    state.counters["shared_conflicts"] =
        benchmark::Counter(static_cast<double>(shared_conflicts) / iters);
    state.counters["unshared_conflicts"] =
        benchmark::Counter(static_cast<double>(unshared_conflicts) / iters);
    state.counters["exported"] = benchmark::Counter(static_cast<double>(counters.exported) / iters);
    state.counters["imported"] = benchmark::Counter(static_cast<double>(counters.imported) / iters);
    state.counters["useful_imports"] =
        benchmark::Counter(static_cast<double>(counters.useful_imports) / iters);
}
BENCHMARK(BM_sat_pigeonhole_shard_sharing)
    ->Args({7, 2})
    ->Args({8, 2})
    ->Unit(benchmark::kMillisecond);

// Clause sharing across budgeted-portfolio members on one core: four
// diversified members advance in 500-conflict slices over a shared pool
// (free-running visibility — the serial schedule keeps it reproducible)
// vs. the same slicing with no exchange. Deterministic: on PHP-8 the
// exchange cuts the total conflicts across members from ~79.6k to ~63.5k
// (PHP-7: ~13.6k to ~9.8k).
void BM_sat_pigeonhole_portfolio_sharing(benchmark::State& state) {
    const int holes = static_cast<int>(state.range(0));
    std::uint64_t shared_conflicts = 0;
    std::uint64_t unshared_conflicts = 0;
    substrate::sharing_counters counters;
    for (auto _ : state) {
        auto factory = [&](unsigned member) {
            auto b = std::make_unique<substrate::sat_backend>(
                substrate::diversified_options(member));
            encode_pigeonhole(b->solver(), holes);
            return b;
        };
        substrate::portfolio_config cfg;
        cfg.members = 4;
        cfg.sequential = true;
        cfg.sharing.slice_conflicts = 500;
        cfg.sharing.max_clause_size = 16;
        cfg.sharing.max_lbd = 16;
        cfg.sharing.max_import_per_checkpoint = 16;
        cfg.sharing.enabled = true;
        auto shared = substrate::race(factory, cfg);
        if (!shared.result.is_unsat()) {
            state.SkipWithError("pigeonhole must be unsat");
            break;
        }
        shared_conflicts += shared.total_conflicts;
        counters.exported += shared.sharing.exported;
        counters.imported += shared.sharing.imported;
        counters.useful_imports += shared.sharing.useful_imports;
        state.PauseTiming();
        cfg.sharing.enabled = false;
        auto unshared = substrate::race(factory, cfg);
        unshared_conflicts += unshared.total_conflicts;
        state.ResumeTiming();
        if (!unshared.result.is_unsat()) {
            state.SkipWithError("pigeonhole must be unsat");
            break;
        }
    }
    const auto iters = static_cast<double>(state.iterations());
    state.counters["shared_conflicts"] =
        benchmark::Counter(static_cast<double>(shared_conflicts) / iters);
    state.counters["unshared_conflicts"] =
        benchmark::Counter(static_cast<double>(unshared_conflicts) / iters);
    state.counters["exported"] = benchmark::Counter(static_cast<double>(counters.exported) / iters);
    state.counters["imported"] = benchmark::Counter(static_cast<double>(counters.imported) / iters);
    state.counters["useful_imports"] =
        benchmark::Counter(static_cast<double>(counters.useful_imports) / iters);
}
BENCHMARK(BM_sat_pigeonhole_portfolio_sharing)->Arg(7)->Arg(8)->Unit(benchmark::kMillisecond);

// ---- solver-feature benchmarks (reduction + inprocessing) -------------------
// The modern-CDCL acceptance evidence: learnt-DB reduction + inprocessing
// (solver_features) against the feature-off baseline, on the corpus
// instances this PR checked in as visible wins plus PHP-8 as the known
// adversarial shape (resolution-hard: the proof needs the clauses
// reduction drops, so features LOSE there — recorded on purpose so the
// tradeoff stays measured, see docs/TUNING.md). Counters per iteration:
// conflicts under each configuration and the derived conflicts/sec; wall
// time is the benchmark's own timing of the featured run.

/// The corpus instances where reduction + inprocessing measurably win
/// (headers in each file carry the numbers); index is the Arg.
const char* const kFeatureBenchInstances[] = {
    "rand3_unsat_e.cnf", "redun_wide_a.cnf", "redun_wide_b.cnf",
    "redun_wide_c.cnf",  "defn_alias_a.cnf",
};

sat::dimacs_problem load_corpus_cnf(const char* name) {
    const std::filesystem::path path = std::filesystem::path(SCIDUCTION_CORPUS_DIR) / name;
    std::ifstream in(path);
    return sat::read_dimacs(in);
}

/// Times the featured run and reports baseline-vs-featured conflict
/// counters; shared by the corpus and pigeonhole variants below.
void run_feature_bench(benchmark::State& state, const sat::dimacs_problem& problem,
                       sat::solver_features features) {
    std::uint64_t featured_conflicts = 0;
    std::uint64_t baseline_conflicts = 0;
    double featured_seconds = 0.0;
    for (auto _ : state) {
        sat::solver s;
        s.set_options(sat::apply_features({}, features));
        problem.load_into(s);
        const auto begin = std::chrono::steady_clock::now();
        auto r = s.solve();
        featured_seconds += std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - begin)
                                .count();
        if (r == sat::solve_result::unknown) state.SkipWithError("must decide");
        featured_conflicts += s.stats().conflicts;
        state.PauseTiming();
        sat::solver base;
        problem.load_into(base);
        if (base.solve() == sat::solve_result::unknown) state.SkipWithError("must decide");
        baseline_conflicts += base.stats().conflicts;
        state.ResumeTiming();
    }
    const auto iters = static_cast<double>(state.iterations());
    state.counters["conflicts"] =
        benchmark::Counter(static_cast<double>(featured_conflicts) / iters);
    state.counters["baseline_conflicts"] =
        benchmark::Counter(static_cast<double>(baseline_conflicts) / iters);
    if (featured_seconds > 0.0)
        state.counters["conflicts_per_sec"] =
            benchmark::Counter(static_cast<double>(featured_conflicts) / featured_seconds);
}

void BM_sat_inprocessing(benchmark::State& state) {
    const auto problem =
        load_corpus_cnf(kFeatureBenchInstances[static_cast<std::size_t>(state.range(0))]);
    run_feature_bench(state, problem, {.reduce = true, .inprocess = true});
}
BENCHMARK(BM_sat_inprocessing)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void BM_sat_reduce(benchmark::State& state) {
    const auto problem =
        load_corpus_cnf(kFeatureBenchInstances[static_cast<std::size_t>(state.range(0))]);
    run_feature_bench(state, problem, {.reduce = true, .inprocess = false});
}
BENCHMARK(BM_sat_reduce)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

// PHP-8 with features on: the adversarial case (reduction fights the
// resolution proof). Keep it in the record so the regression direction is
// visible both ways.
void BM_sat_inprocessing_pigeonhole(benchmark::State& state) {
    for (auto _ : state) {
        sat::solver s;
        s.set_options(sat::apply_features({}, {.reduce = true, .inprocess = true}));
        encode_pigeonhole(s, static_cast<int>(state.range(0)));
        if (s.solve() != sat::solve_result::unsat) state.SkipWithError("pigeonhole must be unsat");
        benchmark::DoNotOptimize(s.stats().conflicts);
    }
}
BENCHMARK(BM_sat_inprocessing_pigeonhole)->Arg(7)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_sat_random_3sat(benchmark::State& state) {
    const int nv = static_cast<int>(state.range(0));
    const int nc = static_cast<int>(4.0 * nv);  // below threshold: mostly sat
    util::rng r(99);
    for (auto _ : state) {
        sat::solver s;
        for (int i = 0; i < nv; ++i) s.new_var();
        for (int i = 0; i < nc; ++i) {
            sat::clause_lits c;
            for (int j = 0; j < 3; ++j)
                c.push_back(sat::mk_lit(
                    static_cast<sat::var>(r.next_below(static_cast<std::uint64_t>(nv))),
                    r.next_bool()));
            s.add_clause(c);
        }
        benchmark::DoNotOptimize(s.solve());
    }
}
BENCHMARK(BM_sat_random_3sat)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_smt_commutativity_proof(benchmark::State& state) {
    // Prove x + y == y + x at the given width by refutation (UNSAT).
    const unsigned width = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        smt::term_manager tm;
        smt::term x = tm.mk_bv_var("x", width);
        smt::term y = tm.mk_bv_var("y", width);
        smt::smt_solver s(tm);
        // Defeat the commutative-normalization rewrite with an obfuscated rhs.
        smt::term lhs = tm.mk_bvadd(x, y);
        smt::term rhs = tm.mk_bvsub(tm.mk_bvadd(tm.mk_bvadd(y, x), y), y);
        s.assert_term(tm.mk_distinct(lhs, rhs));
        if (s.check() != smt::check_result::unsat) state.SkipWithError("must be unsat");
    }
}
BENCHMARK(BM_smt_commutativity_proof)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_smt_mul_distributivity(benchmark::State& state) {
    // x*(y+z) == x*y + x*z — multiplier-heavy UNSAT instance.
    const unsigned width = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        smt::term_manager tm;
        smt::term x = tm.mk_bv_var("x", width);
        smt::term y = tm.mk_bv_var("y", width);
        smt::term z = tm.mk_bv_var("z", width);
        smt::smt_solver s(tm);
        s.assert_term(tm.mk_distinct(tm.mk_bvmul(x, tm.mk_bvadd(y, z)),
                                     tm.mk_bvadd(tm.mk_bvmul(x, y), tm.mk_bvmul(x, z))));
        if (s.check() != smt::check_result::unsat) state.SkipWithError("must be unsat");
    }
}
// Width 8 already takes ~1 min per proof on the from-scratch CDCL core
// (three 8-bit multipliers in one UNSAT query); the sweep stops at 6 to
// keep the suite snappy — the scaling trend is visible from 4 -> 6.
BENCHMARK(BM_smt_mul_distributivity)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_smt_path_feasibility(benchmark::State& state) {
    // The query shape GameTime issues: a conjunction of branch constraints.
    for (auto _ : state) {
        smt::term_manager tm;
        smt::term x = tm.mk_bv_var("x", 32);
        smt::smt_solver s(tm);
        for (int i = 0; i < 8; ++i) {
            smt::term bit = tm.mk_bvand(tm.mk_bvlshr(x, tm.mk_bv_const(32, i)),
                                        tm.mk_bv_const(32, 1));
            s.assert_term(tm.mk_eq(bit, tm.mk_bv_const(32, i % 2)));
        }
        if (s.check() != smt::check_result::sat) state.SkipWithError("must be sat");
        benchmark::DoNotOptimize(s.model_value(tm.mk_bv_var("x", 32)));
    }
}
BENCHMARK(BM_smt_path_feasibility)->Unit(benchmark::kMillisecond);

/// The repeated-oracle-query shape: the same branch-constraint conjunction
/// the sciduction loops re-issue. Builds the terms once, checks many times.
std::vector<smt::term> feasibility_assertions(smt::term_manager& tm, unsigned mul_width) {
    smt::term x = tm.mk_bv_var("x", 32);
    smt::term y = tm.mk_bv_var("y", 32);
    std::vector<smt::term> assertions;
    for (int i = 0; i < 8; ++i) {
        smt::term bit = tm.mk_bvand(tm.mk_bvlshr(x, tm.mk_bv_const(32, i)),
                                    tm.mk_bv_const(32, 1));
        assertions.push_back(tm.mk_eq(bit, tm.mk_bv_const(32, i % 2)));
    }
    // A multiplier makes the solve non-trivial so caching has real work to
    // save at the configured width. The branch constraints pin x's low byte
    // to 0xAA; the product target is chosen compatible (ym = 77 solves it).
    smt::term xm = tm.mk_extract(x, mul_width - 1, 0);
    smt::term ym = tm.mk_extract(y, mul_width - 1, 0);
    assertions.push_back(tm.mk_eq(tm.mk_bvmul(xm, ym),
                                  tm.mk_bv_const(mul_width, (0xAAULL * 77) &
                                                                smt::term_manager::mask(mul_width))));
    return assertions;
}

// Cached-vs-cold on a repeated query: cold re-solves every iteration (the
// request bypasses the cache); warm answers from the substrate query cache
// after the first solve. The ISSUE acceptance target is >= 10x between
// these two.
void BM_smt_repeated_query_cold(benchmark::State& state) {
    smt::term_manager tm;
    auto assertions = feasibility_assertions(tm, static_cast<unsigned>(state.range(0)));
    substrate::smt_engine engine(tm, {.use_cache = false});
    for (auto _ : state) {
        auto r = engine.submit(assertions, substrate::strategy::single()).get();
        if (!r.is_sat()) state.SkipWithError("must be sat");
        benchmark::DoNotOptimize(r.model);
    }
}
BENCHMARK(BM_smt_repeated_query_cold)->Arg(8)->Arg(12)->Unit(benchmark::kMicrosecond);

void BM_smt_repeated_query_cached(benchmark::State& state) {
    smt::term_manager tm;
    auto assertions = feasibility_assertions(tm, static_cast<unsigned>(state.range(0)));
    substrate::smt_engine engine(tm);
    for (auto _ : state) {
        auto r = engine.submit(assertions, substrate::strategy::single()).get();
        if (!r.is_sat()) state.SkipWithError("must be sat");
        benchmark::DoNotOptimize(r.model);
    }
}
BENCHMARK(BM_smt_repeated_query_cached)->Arg(8)->Arg(12)->Unit(benchmark::kMicrosecond);

// Batch dispatch of independent queries (the "all basis-path feasibility
// checks at once" shape) at 1 vs 4 worker threads: submit-many, await-all.
void BM_smt_batch_feasibility(benchmark::State& state) {
    const unsigned threads = static_cast<unsigned>(state.range(0));
    smt::term_manager tm;
    std::vector<substrate::smt_query> queries;
    smt::term x = tm.mk_bv_var("x", 16);
    smt::term y = tm.mk_bv_var("y", 16);
    for (std::uint64_t i = 0; i < 64; ++i) {
        substrate::smt_query q;
        q.assertions = {tm.mk_eq(tm.mk_bvmul(x, y), tm.mk_bv_const(16, 6 + i)),
                        tm.mk_ult(tm.mk_bv_const(16, 1), x)};
        queries.push_back(std::move(q));
    }
    for (auto _ : state) {
        substrate::smt_engine engine(tm, {.use_cache = false, .threads = threads});
        std::vector<substrate::query_handle> handles;
        handles.reserve(queries.size());
        for (const auto& q : queries)
            handles.push_back(engine.submit(
                {q.assertions, q.assumptions, substrate::strategy::single()}));
        std::size_t decided = 0;
        for (auto& h : handles) decided += h.get().ans != substrate::answer::unknown;
        benchmark::DoNotOptimize(decided);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_smt_batch_feasibility)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// The adaptive classifier over a mixed query stream: a tiny query, a
// multiplier-backed medium query, and a re-submit of the tiny one, all with
// strategy automatic. The per-kind auto-pick counters are uploaded as a CI
// artifact (ci.yml, "bench-sharing-counters"): with threads pinned to 4 the
// classifier's inputs are machine-independent, so the counters record the
// selection behaviour over time.
void BM_smt_engine_auto_strategy(benchmark::State& state) {
    std::uint64_t picked_single = 0;
    std::uint64_t picked_portfolio = 0;
    std::uint64_t picked_shard = 0;
    std::uint64_t picked_sop = 0;
    std::uint64_t hits = 0;
    for (auto _ : state) {
        smt::term_manager tm;
        substrate::smt_engine engine(tm, {.threads = 4});
        smt::term t = tm.mk_bv_var("tiny", 8);
        std::vector<smt::term> tiny{tm.mk_ult(t, tm.mk_bv_const(8, 9))};
        auto medium = feasibility_assertions(tm, 12);
        // Wide/huge: cheap to decide (pure propagation) but structurally
        // large, so the size thresholds — not the solve cost — drive the
        // classifier into its portfolio and shard regimes.
        std::vector<smt::term> wide;
        for (int i = 0; i < 220; ++i)
            wide.push_back(tm.mk_eq(tm.mk_bv_var("w" + std::to_string(i), 16),
                                    tm.mk_bv_const(16, 7 * i + 1)));
        std::vector<smt::term> huge;
        for (int i = 0; i < 1600; ++i)
            huge.push_back(tm.mk_eq(tm.mk_bv_var("h" + std::to_string(i), 16),
                                    tm.mk_bv_const(16, 5 * i + 3)));
        if (!engine.submit(tiny).get().is_sat()) state.SkipWithError("must be sat");
        if (!engine.submit(medium).get().is_sat()) state.SkipWithError("must be sat");
        if (!engine.submit(wide).get().is_sat()) state.SkipWithError("must be sat");
        if (!engine.submit(huge).get().is_sat()) state.SkipWithError("must be sat");
        if (!engine.submit(tiny).get().is_sat()) state.SkipWithError("must be sat");
        auto stats = engine.stats();
        picked_single += stats.auto_picks.single;
        picked_portfolio += stats.auto_picks.portfolio;
        picked_shard += stats.auto_picks.shard;
        picked_sop += stats.auto_picks.shard_over_portfolio;
        hits += stats.cache_hits;
    }
    const auto iters = static_cast<double>(state.iterations());
    state.counters["auto_single"] = benchmark::Counter(static_cast<double>(picked_single) / iters);
    state.counters["auto_portfolio"] =
        benchmark::Counter(static_cast<double>(picked_portfolio) / iters);
    state.counters["auto_shard"] = benchmark::Counter(static_cast<double>(picked_shard) / iters);
    state.counters["auto_shard_over_portfolio"] =
        benchmark::Counter(static_cast<double>(picked_sop) / iters);
    state.counters["cache_hits"] = benchmark::Counter(static_cast<double>(hits) / iters);
}
BENCHMARK(BM_smt_engine_auto_strategy)->Unit(benchmark::kMillisecond);

// The persistent-cache warm start (ISSUE 5): every iteration constructs a
// FRESH term_manager + engine pointed at one cache_path, issues a small
// GameTime-shaped query stream, and destroys the engine (which saves the
// cache). Iteration 1 of a cold file pays the solves; every later
// iteration — and every later *run* against the same path, which is how
// the CI warm-cache step drives it — answers from disk with zero solver
// runs, via structurally remapped, evaluation-verified models (the
// variable names differ per iteration on purpose). Counters (per
// iteration): solver_runs, cache_hits, structural_hits, remapped_models,
// persisted_loads — the JSON artifact's warm-vs-cold evidence is
// persisted_loads > 0 and solver_runs ~ 0 on the second run.
// Set SCIDUCTION_BENCH_CACHE_PATH to persist across runs (CI does);
// otherwise a scratch file is used and removed.
void BM_smt_engine_persistent_cache(benchmark::State& state) {
    const char* env_path = std::getenv("SCIDUCTION_BENCH_CACHE_PATH");
    const std::string path =
        env_path != nullptr
            ? std::string(env_path)
            : (std::filesystem::temp_directory_path() / "bench_persistent_cache.bin").string();
    std::uint64_t solver_runs = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t structural_hits = 0;
    std::uint64_t remapped = 0;
    std::uint64_t persisted = 0;
    std::uint64_t iteration = 0;
    for (auto _ : state) {
        smt::term_manager tm;
        substrate::smt_engine engine(tm, {.cache_path = path});
        // Per-iteration variable names: a hit can only come from the
        // structural key, never from id or name reuse.
        const std::string salt = "it" + std::to_string(iteration++);
        smt::term x = tm.mk_bv_var("x" + salt, 16);
        smt::term y = tm.mk_bv_var("y" + salt, 16);
        for (std::uint64_t i = 0; i < 8; ++i) {
            auto r = engine
                         .submit({tm.mk_eq(tm.mk_bvmul(x, y), tm.mk_bv_const(16, 1 + 3 * i)),
                                  tm.mk_ult(tm.mk_bv_const(16, 1), x)},
                                 substrate::strategy::single())
                         .get();
            if (r.ans == substrate::answer::unknown) state.SkipWithError("must decide");
            benchmark::DoNotOptimize(r.model);
        }
        auto stats = engine.stats();
        solver_runs += stats.solver_runs;
        cache_hits += stats.cache_hits;
        structural_hits += stats.structural_hits;
        remapped += stats.remapped_models;
        persisted += stats.persisted_loads;
    }
    const auto iters = static_cast<double>(state.iterations());
    state.counters["solver_runs"] = benchmark::Counter(static_cast<double>(solver_runs) / iters);
    state.counters["cache_hits"] = benchmark::Counter(static_cast<double>(cache_hits) / iters);
    state.counters["structural_hits"] =
        benchmark::Counter(static_cast<double>(structural_hits) / iters);
    state.counters["remapped_models"] = benchmark::Counter(static_cast<double>(remapped) / iters);
    state.counters["persisted_loads"] = benchmark::Counter(static_cast<double>(persisted) / iters);
    if (env_path == nullptr) std::remove(path.c_str());
}
BENCHMARK(BM_smt_engine_persistent_cache)->Unit(benchmark::kMillisecond);

void BM_aig_parallel_simulation(benchmark::State& state) {
    // 64-way parallel random simulation of a shift-register + logic mesh.
    aig::aig g;
    std::vector<aig::literal> ins;
    for (int i = 0; i < 8; ++i) ins.push_back(g.add_input());
    std::vector<aig::literal> latches;
    for (int i = 0; i < 64; ++i) latches.push_back(g.add_latch(false));
    util::rng r(5);
    std::vector<aig::literal> pool = ins;
    pool.insert(pool.end(), latches.begin(), latches.end());
    for (int i = 0; i < 500; ++i) {
        aig::literal a = pool[r.next_below(pool.size())];
        aig::literal b = pool[r.next_below(pool.size())];
        pool.push_back(g.add_and(r.next_bool() ? a : aig::negate(a),
                                 r.next_bool() ? b : aig::negate(b)));
    }
    for (std::size_t i = 0; i < latches.size(); ++i)
        g.set_latch_next(latches[i], pool[pool.size() - 1 - i]);
    auto st = g.initial_state();
    std::vector<std::uint64_t> inputs(8);
    for (auto _ : state) {
        for (auto& w : inputs) w = r.next_u64();
        auto values = g.simulate_step(st, inputs);
        st = g.next_state(values);
        benchmark::DoNotOptimize(st[0]);
    }
    state.SetItemsProcessed(state.iterations() * 64);  // patterns per step
}
BENCHMARK(BM_aig_parallel_simulation);

}  // namespace

BENCHMARK_MAIN();
