// Serving overhead: what a round-trip through sciductiond costs on top of
// a direct smt_engine::solve. Each iteration submits one tiny query over
// the unix socket and awaits its result frame, so the number covers DAG
// serialization, the event loop's dispatch tick, the solve, and the result
// frame — the per-query price of process isolation and multi-tenancy.
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <thread>

#include "service/client.hpp"
#include "service/server.hpp"
#include "smt/term.hpp"
#include "substrate/engine.hpp"

namespace {

using namespace sciduction;
using namespace std::chrono_literals;

substrate::solve_request tiny_request(smt::term_manager& tm, std::uint64_t i) {
    smt::term x = tm.mk_bv_var("x", 16);
    substrate::solve_request req;
    req.assertions = {tm.mk_eq(x, tm.mk_bv_const(16, i)),
                      tm.mk_ult(x, tm.mk_bv_const(16, 1u << 15))};
    req.strategy = substrate::strategy::single();
    req.strategy.use_cache = false;
    return req;
}

void bm_direct_solve(benchmark::State& state) {
    smt::term_manager tm;
    substrate::smt_engine engine(tm, {.threads = 2});
    std::uint64_t i = 0;
    for (auto _ : state) {
        const substrate::backend_result r = engine.solve(tiny_request(tm, i++ % 1000));
        benchmark::DoNotOptimize(r.ans);
    }
}
BENCHMARK(bm_direct_solve)->Unit(benchmark::kMicrosecond);

void bm_daemon_round_trip(benchmark::State& state) {
    const std::string socket_path =
        "/tmp/sciduction_bench_" + std::to_string(::getpid()) + ".sock";
    service::server daemon({.socket_path = socket_path, .threads = 2});
    std::thread serving([&] { daemon.run(); });
    while (!daemon.serving()) std::this_thread::sleep_for(1ms);
    {
        smt::term_manager tm;
        service::client cli(tm, socket_path, "bench");
        std::uint64_t i = 0;
        for (auto _ : state) {
            const service::submit_outcome out = cli.submit(tiny_request(tm, i++ % 1000));
            const service::result_message r = cli.await(out.request_id);
            benchmark::DoNotOptimize(r.finish_seq);
        }
    }
    daemon.request_stop();
    serving.join();
}
BENCHMARK(bm_daemon_round_trip)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
